#include "impeccable/core/stages/ml1_stage.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "impeccable/common/rng.hpp"
#include "impeccable/ml/res.hpp"
#include "impeccable/ml/streaming.hpp"

namespace impeccable::core::stages {

std::vector<rct::TaskDescription> Ml1Stage::build(CampaignState& cs) {
  s_->iter_begin = cs.backend->now();

  if (cs.scale) {
    // Virtual workload: inference sharded over the partition's GPUs. With a
    // replay installed, each shard task also streams its slice of a real
    // LigandSource through the real featurize -> predict -> top-k path.
    std::vector<rct::TaskDescription> tasks;
    const double per_shard =
        cs.scale->ml1_ligands / static_cast<double>(cs.scale->ml1_shards);
    ScaleModel::Replay* replay = cs.scale->replay;
    const std::size_t shards = static_cast<std::size_t>(cs.scale->ml1_shards);
    if (replay) s_->replay_parts.assign(shards, {});
    for (std::size_t k = 0; k < shards; ++k) {
      rct::TaskDescription t;
      t.name = "ml1";
      t.gpus = 1;
      t.duration = per_shard * cs.scale->ml1_gpu_seconds_per_ligand;
      if (replay) {
        auto scratch = s_;
        t.payload = [replay, scratch, k, shards] {
          const std::size_t n = replay->source->size();
          const std::size_t lo = n * k / shards;
          const std::size_t hi = n * (k + 1) / shards;
          ml::StreamingTopK topk(replay->top_k);
          ml::score_ligands(*replay->source, *replay->model, lo, hi,
                            replay->window, nullptr, &topk);
          scratch->replay_parts[k] = topk.take_sorted();
        };
      }
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  surrogate_ = std::make_unique<ml::SurrogateModel>(cs.config->surrogate);

  rct::TaskDescription t;
  t.name = "ml1-train-infer";
  t.duration = cs.config->sim_durations.ml1;
  CampaignState* st = &cs;
  t.payload = [this, st] {
    // Iteration 0 has no training data yet; the merge step bootstraps with
    // a random diverse sample instead.
    if (iter_ == 0 || st->train_images.size() < 8) return;
    const auto& scores = st->train_scores;
    const double best = *std::min_element(scores.begin(), scores.end());
    const double worst = *std::max_element(scores.begin(), scores.end());
    std::vector<float> labels;
    labels.reserve(scores.size());
    for (double s : scores) labels.push_back(ml::score_to_label(s, best, worst));
    surrogate_->train(st->train_images, labels);

    // Library-wide inference, streamed in bounded windows into the score
    // spill (file-backed when the library itself is out-of-core, so neither
    // images nor scores ever materialize at library scale).
    const std::size_t n = st->source->size();
    const bool out_of_core = st->config->library_backend ==
                             ExecConfig::LibraryBackend::kMmapStore;
    auto spill = std::make_shared<ml::ScoreSpill>(
        out_of_core
            ? ml::ScoreSpill::file_backed(
                  n, st->store_dir + "/scores-" + st->target->name + "-iter" +
                         std::to_string(iter_) + ".f32")
            : ml::ScoreSpill::in_memory(n));
    ml::score_ligands(*st->source, *surrogate_, 0, n,
                      st->config->featurize_window, spill.get());
    s_->scores = std::move(spill);
    st->report->flops->add(
        "ML1", surrogate_->flops_per_image() *
                   (n + 3 * st->train_images.size() *
                            static_cast<std::size_t>(
                                st->config->surrogate.epochs)));
  };
  return {std::move(t)};
}

void Ml1Stage::merge(CampaignState& cs) {
  if (cs.scale) {
    if (ScaleModel::Replay* replay = cs.scale->replay) {
      replay->ligands_scored += replay->source->size();
      replay->selected = ml::StreamingTopK::merge_sorted(
          std::move(s_->replay_parts), replay->top_k);
      s_->replay_parts.clear();
    }
    return;
  }
  const CampaignConfig& cfg = *cs.config;
  const std::size_t n = cs.source->size();
  // Per-(iteration, stage) stream: selection randomness is independent of
  // how many draws earlier iterations consumed, so sequential and pipelined
  // mode select identical compounds.
  common::Rng rng(item_seed(cfg.seed, iter_salt(0x311, iter_), 0));

  // The enrichment denominator: every ML1 pass covers the whole library,
  // including the warm-up iteration (whose untrained surrogate scores
  // everything 0.5 and defers selection to bootstrap sampling).
  cs.metrics(iter_).library_screened = n;

  std::vector<std::size_t> chosen;
  if (iter_ == 0 || cs.train_images.size() < 8) {
    // Bootstrap: the first bootstrap_docks *distinct* uniform draws. The
    // accepted-value stream is a pure function of the seed, so a larger
    // budget extends — never reshuffles — a smaller one's picks, the prefix
    // property checkpoint/resume tests rely on. O(budget) memory, unlike
    // shuffling a materialized [0, n) permutation.
    std::set<std::size_t> seen;
    const std::size_t want = std::min(cfg.bootstrap_docks, n);
    while (seen.size() < want) {
      const std::size_t idx = rng.index(n);
      if (seen.insert(idx).second) chosen.push_back(idx);
    }
  } else {
    const ml::ScoreSpill& scores = *s_->scores;
    std::size_t budget = std::max<std::size_t>(
        4, static_cast<std::size_t>(cfg.dock_top_fraction *
                                    static_cast<double>(n)));
    if (cfg.auto_dock_budget) {
      // Validation set: compounds with both a surrogate prediction and a
      // docking ground truth — exactly the docked ordinals, in index order.
      std::vector<double> pred, truth;
      for (std::size_t idx : cs.docked_indices) {
        pred.push_back(scores.at(idx));
        truth.push_back(
            -cs.report->compounds.at(cs.source->id(idx)).dock_score);
      }
      if (pred.size() >= 20) {
        const ml::EnrichmentSurface res(pred, truth);
        const double frac =
            res.budget_for(cfg.auto_budget_top, cfg.auto_budget_coverage);
        budget = std::clamp<std::size_t>(
            static_cast<std::size_t>(frac * static_cast<double>(n)), 4,
            n / 2);
      }
    }
    const std::size_t explore = static_cast<std::size_t>(
        cfg.explore_fraction * static_cast<double>(budget));
    const std::size_t top = budget - explore;
    // The top slice comes from the external-memory streaming top-k: exact,
    // bounded memory, ties broken to the lower library index.
    for (const auto& c : ml::select_top_k(scores, top))
      chosen.push_back(static_cast<std::size_t>(c.index));
    // Exploration: uniform over the library (Sec. 7.1.1: sample lower ranks
    // so high-affinity compounds are not missed); draws that land in the
    // top slice collapse in the sort+unique below.
    for (std::size_t e = 0; e < explore && e < n; ++e)
      chosen.push_back(rng.index(n));
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  }

  // Never redo work restored from a checkpoint (or docked by an earlier
  // iteration).
  chosen.erase(std::remove_if(chosen.begin(), chosen.end(),
                              [&](std::size_t idx) {
                                return cs.docked_indices.count(idx) != 0;
                              }),
               chosen.end());

  s_->dock_indices = std::move(chosen);
  s_->dock_pred.resize(s_->dock_indices.size());
  for (std::size_t i = 0; i < s_->dock_indices.size(); ++i)
    s_->dock_pred[i] =
        s_->scores ? static_cast<double>(s_->scores->at(s_->dock_indices[i]))
                   : 0.5;
  // Molecules are parsed inside the dock task payloads (each into its own
  // slot), so out-of-core parsing runs on workers, not in the merge.
  s_->molecules.resize(s_->dock_indices.size());
  s_->dock_results.resize(s_->dock_indices.size());
}

}  // namespace impeccable::core::stages
