#pragma once
// S3-CG — coarse ESMACS ensembles on the diversity-picked docked compounds;
// the merge records binding free energies onto the compound records.

#include <memory>

#include "impeccable/core/stages/stage.hpp"

namespace impeccable::core::stages {

class CgEsmacsStage : public Stage {
 public:
  CgEsmacsStage(int iteration, std::shared_ptr<IterationScratch> scratch)
      : iter_(iteration), s_(std::move(scratch)) {}

  const char* name() const override { return "S3-CG"; }
  std::vector<rct::TaskDescription> build(CampaignState& cs) override;
  void merge(CampaignState& cs) override;

 private:
  int iter_;
  std::shared_ptr<IterationScratch> s_;
};

}  // namespace impeccable::core::stages
