#pragma once
// Stage-module interface: one small class per campaign stage, owning its
// task construction (build), payloads, and feedback-merge step (merge) over
// the explicit shared CampaignState. to_node() adapts a module to a
// rct::StageNode so the graph engine drives it: build() runs once every
// dependency completed, merge() becomes the node's (serialized) post_exec.

#include <memory>
#include <string>
#include <vector>

#include "impeccable/core/stages/campaign_state.hpp"
#include "impeccable/rct/entk.hpp"

namespace impeccable::core::stages {

class Stage {
 public:
  virtual ~Stage() = default;

  /// Span / stage name ("ML1", "S1", "S3-CG", "S2", "S3-FG").
  virtual const char* name() const = 0;

  /// Construct this stage's tasks. Runs when every dependency has completed
  /// (their merges included), so upstream scratch state is fully populated.
  virtual std::vector<rct::TaskDescription> build(CampaignState& cs) = 0;

  /// Feedback-merge: fold the finished tasks' results into the shared
  /// state. Serialized across the whole graph by the engine.
  virtual void merge(CampaignState& cs) = 0;
};

/// Wrap a stage module into a graph node labeled with `pipeline`
/// ("iteration-N"). The node keeps the module and the state alive.
inline rct::StageNode to_node(std::shared_ptr<Stage> stage,
                              std::shared_ptr<CampaignState> cs,
                              std::string pipeline) {
  rct::StageNode node;
  node.name = stage->name();
  node.pipeline = std::move(pipeline);
  node.build = [stage, cs] { return stage->build(*cs); };
  node.post_exec = [stage, cs](rct::StageGraph&) { stage->merge(*cs); };
  return node;
}

}  // namespace impeccable::core::stages
