#include "impeccable/core/stages/graph_builder.hpp"

#include <string>

#include "impeccable/core/stages/cg_esmacs_stage.hpp"
#include "impeccable/core/stages/fg_esmacs_stage.hpp"
#include "impeccable/core/stages/ml1_stage.hpp"
#include "impeccable/core/stages/s1_dock_stage.hpp"
#include "impeccable/core/stages/s2_aae_stage.hpp"

namespace impeccable::core::stages {

std::vector<CampaignGraphIds> add_campaign_graph(
    rct::StageGraph& graph, const std::shared_ptr<CampaignState>& state,
    int iterations, bool pipelined) {
  std::vector<CampaignGraphIds> out;
  out.reserve(static_cast<std::size_t>(iterations));

  for (int iter = 0; iter < iterations; ++iter) {
    auto scratch = std::make_shared<IterationScratch>();
    scratch->iteration = iter;
    const std::string pipeline = "iteration-" + std::to_string(iter);

    CampaignGraphIds ids;
    std::vector<rct::NodeId> ml1_deps;
    if (iter > 0) {
      // The feedback edge: next iteration's surrogate needs this
      // iteration's docking scores — and, in sequential mode, the whole
      // iteration to have finished.
      ml1_deps.push_back(pipelined ? out.back().s1 : out.back().fg);
    }
    ids.ml1 = graph.add(
        to_node(std::make_shared<Ml1Stage>(iter, scratch), state, pipeline),
        std::move(ml1_deps));
    ids.s1 = graph.add(
        to_node(std::make_shared<S1DockStage>(iter, scratch), state, pipeline),
        {ids.ml1});
    ids.cg = graph.add(
        to_node(std::make_shared<CgEsmacsStage>(iter, scratch), state, pipeline),
        {ids.s1});
    ids.s2 = graph.add(
        to_node(std::make_shared<S2AaeStage>(iter, scratch), state, pipeline),
        {ids.cg});
    ids.fg = graph.add(
        to_node(std::make_shared<FgEsmacsStage>(iter, scratch), state, pipeline),
        {ids.s2});
    out.push_back(ids);
  }
  return out;
}

}  // namespace impeccable::core::stages
