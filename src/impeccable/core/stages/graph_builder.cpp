#include "impeccable/core/stages/graph_builder.hpp"

#include <string>

#include "impeccable/core/stages/cg_esmacs_stage.hpp"
#include "impeccable/core/stages/fg_esmacs_stage.hpp"
#include "impeccable/core/stages/ml1_stage.hpp"
#include "impeccable/core/stages/s1_dock_stage.hpp"
#include "impeccable/core/stages/s2_aae_stage.hpp"

namespace impeccable::core::stages {

StageTails stage_tails(const ExecConfig::StageDurations& d) {
  StageTails t;
  // The ensemble tail each node gates within its own iteration: a CG wave
  // holds up cg+s2+fg virtual seconds of downstream work, so it outbids the
  // cheap-per-task ML1/S1 bulk in every backend queue. ML1 also carries the
  // full chain tail: it gates everything downstream of it yet costs almost
  // nothing per shard, so ranking it below per-chunk docking inverts the
  // critical path (a cheap gate starving behind bulk work it unblocks).
  t.cg = d.cg + d.s2 + d.fg;
  t.s2 = d.s2 + d.fg;
  t.fg = d.fg;
  t.ml1 = d.ml1 + t.cg;
  t.s1 = d.dock;
  return t;
}

StageTails stage_tails(const ScaleModel& m) {
  StageTails t;
  // Virtual-workload tails use each target's own calibrated model, so
  // co-scheduled heterogeneous targets rank against each other: the
  // ensemble stages carry the aggregate node-seconds of the remaining
  // CG -> S2 -> FG chain (a rich target's wave outbids a winding-down
  // one's), while S1 keeps a per-chunk magnitude — bulk docking stays
  // backfill no matter how large the stream is. ML1 carries the chain
  // tail on top of its per-shard cost: it gates the whole iteration yet
  // is the cheapest stage, and ranking it below docking starves the one
  // task wave that unblocks everything else behind bulk traffic.
  const double cg = static_cast<double>(m.cg_ligands) * m.cg_whole_nodes *
                    m.cg_seconds;
  const double s2 = static_cast<double>(m.s2_tasks) * m.s2_whole_nodes *
                    m.s2_seconds;
  const double fg = static_cast<double>(m.fg_conformations) *
                    m.fg_whole_nodes * m.fg_seconds;
  t.cg = cg + s2 + fg;
  t.s2 = s2 + fg;
  t.fg = fg;
  t.ml1 = (m.ml1_shards > 0
               ? m.ml1_ligands / m.ml1_shards * m.ml1_gpu_seconds_per_ligand
               : 0.0) +
          t.cg;
  t.s1 = static_cast<double>(m.s1_chunk) * m.s1_gpu_seconds_per_ligand;
  return t;
}

std::vector<CampaignGraphIds> add_campaign_graph(
    rct::StageGraph& graph, const std::shared_ptr<CampaignState>& state,
    int iterations, bool pipelined, const CampaignGraphOptions& opts) {
  std::vector<CampaignGraphIds> out;
  out.reserve(static_cast<std::size_t>(iterations));

  for (int iter = 0; iter < iterations; ++iter) {
    auto scratch = std::make_shared<IterationScratch>();
    scratch->iteration = iter;
    const std::string pipeline = "iteration-" + std::to_string(iter);

    CampaignGraphIds ids;
    std::vector<rct::NodeId> ml1_deps;
    if (iter > 0) {
      // The feedback edge: next iteration's surrogate needs this
      // iteration's docking scores — and, in sequential mode, the whole
      // iteration to have finished.
      ml1_deps.push_back(pipelined ? out.back().s1 : out.back().fg);
    }
    ids.ml1 = graph.add(
        to_node(std::make_shared<Ml1Stage>(iter, scratch), state, pipeline),
        std::move(ml1_deps));
    rct::StageNode s1 =
        to_node(std::make_shared<S1DockStage>(iter, scratch), state, pipeline);
    if (opts.on_s1_merged) {
      // Chain the hook after the stage's own feedback merge; both run under
      // the engine's post_exec serialization.
      auto merge = std::move(s1.post_exec);
      s1.post_exec = [merge = std::move(merge), hook = opts.on_s1_merged,
                      iter](rct::StageGraph& g) {
        if (merge) merge(g);
        hook(g, iter);
      };
    }
    ids.s1 = graph.add(std::move(s1), {ids.ml1});
    ids.cg = graph.add(
        to_node(std::make_shared<CgEsmacsStage>(iter, scratch), state, pipeline),
        {ids.s1});
    ids.s2 = graph.add(
        to_node(std::make_shared<S2AaeStage>(iter, scratch), state, pipeline),
        {ids.cg});
    ids.fg = graph.add(
        to_node(std::make_shared<FgEsmacsStage>(iter, scratch), state, pipeline),
        {ids.s2});

    if (opts.critical_path_priority) {
      const StageTails t =
          state->scale ? stage_tails(*state->scale)
                       : stage_tails(state->config
                                         ? state->config->sim_durations
                                         : ExecConfig::StageDurations{});
      graph.set_priority(ids.ml1, t.ml1 + opts.priority_bias);
      graph.set_priority(ids.s1, t.s1 + opts.priority_bias);
      graph.set_priority(ids.cg, t.cg + opts.priority_bias);
      graph.set_priority(ids.s2, t.s2 + opts.priority_bias);
      graph.set_priority(ids.fg, t.fg + opts.priority_bias);
    }
    out.push_back(ids);
  }
  return out;
}

}  // namespace impeccable::core::stages
