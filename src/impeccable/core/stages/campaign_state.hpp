#pragma once
// Shared campaign state threaded through the stage modules.
//
// CampaignState replaces the capture-everything lambdas of the old
// Campaign::run() monolith with one explicit, documented surface. The
// memory model is simple and load-bearing for cross-iteration pipelining:
//
//  * task payloads write only their own pre-sized slot of an
//    IterationScratch (dock_results[i], cg_results[j], ...);
//  * every other mutation — selection, feedback accumulation, record and
//    metric updates — happens inside Stage::merge(), and the graph engine
//    serializes merges (StageNode::post_exec) across the whole run;
//  * cross-iteration reads are ordered by graph dependencies: iteration
//    i+1's ML1 depends on iteration i's S1 merge, which is the only writer
//    of the training set and the `docked` flags ML1 reads.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "impeccable/chem/ligand_source.hpp"
#include "impeccable/core/campaign.hpp"
#include "impeccable/ml/streaming.hpp"

namespace impeccable::core::stages {

/// Deterministic per-item seed derivation (identical to the historical
/// campaign formula, so per-compound docking seeds are stable).
inline std::uint64_t item_seed(std::uint64_t base, std::uint64_t salt,
                               std::uint64_t i) {
  std::uint64_t s = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  common::splitmix64(s);
  return s ^ (i * 0xbf58476d1ce4e5b9ULL);
}

/// Mix an iteration index into a stage salt: every (iteration, stage) pair
/// draws from its own stream, so science results do not depend on the order
/// iterations execute in (sequential vs pipelined mode).
inline std::uint64_t iter_salt(std::uint64_t salt, int iteration) {
  return salt ^ (0x9e3779b97f4a7c15ULL *
                 (static_cast<std::uint64_t>(iteration) + 1));
}

/// Virtual-workload description for scale studies: when installed on the
/// CampaignState, stage modules build chunked TaskDescriptions with
/// calibrated durations instead of real payloads, and merges become no-ops.
/// This is how bench/campaign_at_scale drives the real stage modules at
/// 10^8-ligand scale on a SimBackend.
struct ScaleModel {
  double ml1_ligands = 0.0;
  int ml1_shards = 1;
  double ml1_gpu_seconds_per_ligand = 0.0;

  std::size_t s1_docks = 0;
  std::size_t s1_chunk = 1000;  ///< ligands packed per docking task
  double s1_gpu_seconds_per_ligand = 0.0;

  std::size_t cg_ligands = 0;
  int cg_whole_nodes = 1;
  double cg_seconds = 0.0;  ///< per ensemble

  int s2_tasks = 8;
  int s2_whole_nodes = 2;
  double s2_seconds = 0.0;

  std::size_t fg_conformations = 0;
  int fg_whole_nodes = 4;
  double fg_seconds = 0.0;  ///< per ensemble

  /// Optional replay: when set, the virtual ML1 shard tasks additionally
  /// stream their partition of a *real* LigandSource through the real
  /// featurize -> predict -> streaming-top-k path (durations stay virtual).
  /// This is how bench/library_scale runs the production ML1 code over a
  /// 1e8-ligand on-disk store inside a simulated campaign.
  struct Replay {
    const chem::LigandSource* source = nullptr;
    const ml::SurrogateModel* model = nullptr;
    std::size_t window = 8192;
    std::size_t top_k = 1000;
    // Outputs, written only by ML1 merges (engine-serialized):
    std::vector<ml::TopCandidate> selected;  ///< exact top-k, last iteration
    std::size_t ligands_scored = 0;          ///< cumulative over iterations
  };
  Replay* replay = nullptr;
};

/// Mutable state of one campaign iteration, shared by that iteration's five
/// stage modules. Tasks write only to their own index; graph dependencies
/// order the phases.
struct IterationScratch {
  int iteration = 0;

  // ML1 outputs. Library-wide surrogate scores live in an external-memory
  // spill (RAM-backed for InMemorySource, file-backed for MmapSource) —
  // never a materialized std::vector over the library. `dock_pred` carries
  // the predictions for just the selected dock slice (0.5 on bootstrap
  // iterations, before the surrogate has trained).
  std::shared_ptr<ml::ScoreSpill> scores;
  std::vector<double> dock_pred;  ///< parallel to dock_indices

  // Scale-replay partials: one slot per virtual ML1 shard task.
  std::vector<std::vector<ml::TopCandidate>> replay_parts;

  // S1 inputs/outputs.
  std::vector<std::size_t> dock_indices;  ///< into the library
  std::vector<chem::Molecule> molecules;  ///< parsed, parallel to dock_indices
  std::vector<dock::DockResult> dock_results;

  // S3-CG.
  std::vector<std::size_t> cg_pick;  ///< indices into dock_indices
  std::vector<md::System> cg_systems;
  std::vector<int> cg_rotatable;
  std::vector<fe::EsmacsResult> cg_results;

  // S2 -> S3-FG.
  struct FgJob {
    std::size_t cg_index = 0;  ///< which CG compound this conformation is of
    md::System system;
    int rotatable = 0;
  };
  std::vector<FgJob> fg_jobs;
  std::vector<fe::EsmacsResult> fg_results;

  // Stage timestamps (backend seconds) for throughput metrics.
  double iter_begin = 0.0, s1_begin = 0.0, s1_end = 0.0;
};

/// Campaign-wide shared state. Owned by Campaign::run(); stage modules hold
/// it through a shared_ptr captured in the graph nodes.
struct CampaignState {
  const Target* target = nullptr;
  const CampaignConfig* config = nullptr;
  rct::ExecutionBackend* backend = nullptr;  ///< the profiled wrapper
  CampaignReport* report = nullptr;
  const ScaleModel* scale = nullptr;  ///< non-null = virtual workload mode

  /// The library, behind a polymorphic source: InMemorySource (eager,
  /// historical behavior) or MmapSource (on-disk store, lazy windows) per
  /// config->library_backend. Accessors are const and thread-safe; stages
  /// address ligands by ordinal everywhere.
  std::shared_ptr<const chem::LigandSource> source;
  /// Directory of the on-disk store (empty under kInMemory); iteration
  /// score spills land here too.
  std::string store_dir;

  /// Compound id -> library ordinal for every compound that has a record.
  /// Built once (checkpoint restore resolves all prior ids in one library
  /// scan) and extended as records are created; auto-budget validation
  /// lookups reuse it instead of re-scanning.
  std::map<std::string, std::size_t> id_index;
  /// Ordinals of every docked compound (restored or this run): the "never
  /// redo work" filter, without per-candidate id round-trips.
  std::set<std::size_t> docked_indices;

  /// Accumulated ML1 training data: depictions + dock scores (the feedback
  /// loop). Appended only by S1 merges, read only by downstream ML1 stages.
  std::vector<chem::Image> train_images;
  std::vector<double> train_scores;

  /// Build the ligand source (generate in RAM, or spill/reuse the on-disk
  /// store), then restore checkpointed records (config->resume_checkpoint)
  /// into the report and the training set. Requires target/config/report to
  /// be set. Not used in scale mode.
  void init();

  /// The record for library ordinal `index`, created (id, smiles, and
  /// id_index entry) on first touch. Records exist only for touched
  /// compounds — a 1e8-ligand run must not materialize 1e8 records.
  CompoundRecord& record_for(std::size_t index);

  IterationMetrics& metrics(int iteration) {
    return report->iterations[static_cast<std::size_t>(iteration)];
  }
};

}  // namespace impeccable::core::stages
