#pragma once
// Shared campaign state threaded through the stage modules.
//
// CampaignState replaces the capture-everything lambdas of the old
// Campaign::run() monolith with one explicit, documented surface. The
// memory model is simple and load-bearing for cross-iteration pipelining:
//
//  * task payloads write only their own pre-sized slot of an
//    IterationScratch (dock_results[i], cg_results[j], ...);
//  * every other mutation — selection, feedback accumulation, record and
//    metric updates — happens inside Stage::merge(), and the graph engine
//    serializes merges (StageNode::post_exec) across the whole run;
//  * cross-iteration reads are ordered by graph dependencies: iteration
//    i+1's ML1 depends on iteration i's S1 merge, which is the only writer
//    of the training set and the `docked` flags ML1 reads.

#include <cstdint>
#include <memory>
#include <vector>

#include "impeccable/core/campaign.hpp"

namespace impeccable::core::stages {

/// Deterministic per-item seed derivation (identical to the historical
/// campaign formula, so per-compound docking seeds are stable).
inline std::uint64_t item_seed(std::uint64_t base, std::uint64_t salt,
                               std::uint64_t i) {
  std::uint64_t s = base ^ (salt * 0x9e3779b97f4a7c15ULL);
  common::splitmix64(s);
  return s ^ (i * 0xbf58476d1ce4e5b9ULL);
}

/// Mix an iteration index into a stage salt: every (iteration, stage) pair
/// draws from its own stream, so science results do not depend on the order
/// iterations execute in (sequential vs pipelined mode).
inline std::uint64_t iter_salt(std::uint64_t salt, int iteration) {
  return salt ^ (0x9e3779b97f4a7c15ULL *
                 (static_cast<std::uint64_t>(iteration) + 1));
}

/// Virtual-workload description for scale studies: when installed on the
/// CampaignState, stage modules build chunked TaskDescriptions with
/// calibrated durations instead of real payloads, and merges become no-ops.
/// This is how bench/campaign_at_scale drives the real stage modules at
/// 10^8-ligand scale on a SimBackend.
struct ScaleModel {
  double ml1_ligands = 0.0;
  int ml1_shards = 1;
  double ml1_gpu_seconds_per_ligand = 0.0;

  std::size_t s1_docks = 0;
  std::size_t s1_chunk = 1000;  ///< ligands packed per docking task
  double s1_gpu_seconds_per_ligand = 0.0;

  std::size_t cg_ligands = 0;
  int cg_whole_nodes = 1;
  double cg_seconds = 0.0;  ///< per ensemble

  int s2_tasks = 8;
  int s2_whole_nodes = 2;
  double s2_seconds = 0.0;

  std::size_t fg_conformations = 0;
  int fg_whole_nodes = 4;
  double fg_seconds = 0.0;  ///< per ensemble
};

/// Mutable state of one campaign iteration, shared by that iteration's five
/// stage modules. Tasks write only to their own index; graph dependencies
/// order the phases.
struct IterationScratch {
  int iteration = 0;

  // ML1 outputs.
  std::vector<double> surrogate_scores;

  // S1 inputs/outputs.
  std::vector<std::size_t> dock_indices;  ///< into the library
  std::vector<chem::Molecule> molecules;  ///< parsed, parallel to dock_indices
  std::vector<dock::DockResult> dock_results;

  // S3-CG.
  std::vector<std::size_t> cg_pick;  ///< indices into dock_indices
  std::vector<md::System> cg_systems;
  std::vector<int> cg_rotatable;
  std::vector<fe::EsmacsResult> cg_results;

  // S2 -> S3-FG.
  struct FgJob {
    std::size_t cg_index = 0;  ///< which CG compound this conformation is of
    md::System system;
    int rotatable = 0;
  };
  std::vector<FgJob> fg_jobs;
  std::vector<fe::EsmacsResult> fg_results;

  // Stage timestamps (backend seconds) for throughput metrics.
  double iter_begin = 0.0, s1_begin = 0.0, s1_end = 0.0;
};

/// Campaign-wide shared state. Owned by Campaign::run(); stage modules hold
/// it through a shared_ptr captured in the graph nodes.
struct CampaignState {
  const Target* target = nullptr;
  const CampaignConfig* config = nullptr;
  rct::ExecutionBackend* backend = nullptr;  ///< the profiled wrapper
  CampaignReport* report = nullptr;
  const ScaleModel* scale = nullptr;  ///< non-null = virtual workload mode

  chem::CompoundLibrary library;
  std::vector<chem::Molecule> lib_mols;
  std::vector<chem::Image> lib_images;

  /// Accumulated ML1 training data: depictions + dock scores (the feedback
  /// loop). Appended only by S1 merges, read only by downstream ML1 stages.
  std::vector<chem::Image> train_images;
  std::vector<double> train_scores;

  /// Generate and featurize the library, then restore checkpointed records
  /// (config->resume_checkpoint) into the report and the training set.
  /// Requires target/config/report to be set. Not used in scale mode.
  void init();

  IterationMetrics& metrics(int iteration) {
    return report->iterations[static_cast<std::size_t>(iteration)];
  }
};

}  // namespace impeccable::core::stages
