#pragma once
// S2 — 3D-AAE trained on the CG trajectory point clouds of the top binders;
// LOF over the latent space picks the outlier conformations that seed S3-FG.

#include <memory>

#include "impeccable/core/stages/stage.hpp"

namespace impeccable::core::stages {

class S2AaeStage : public Stage {
 public:
  S2AaeStage(int iteration, std::shared_ptr<IterationScratch> scratch)
      : iter_(iteration), s_(std::move(scratch)) {}

  const char* name() const override { return "S2"; }
  std::vector<rct::TaskDescription> build(CampaignState& cs) override;
  void merge(CampaignState& cs) override;

 private:
  int iter_;
  std::shared_ptr<IterationScratch> s_;
};

}  // namespace impeccable::core::stages
