#include "impeccable/core/stages/cg_esmacs_stage.hpp"

#include "impeccable/md/simulation.hpp"

namespace impeccable::core::stages {

std::vector<rct::TaskDescription> CgEsmacsStage::build(CampaignState& cs) {
  if (cs.scale) {
    std::vector<rct::TaskDescription> tasks;
    tasks.reserve(cs.scale->cg_ligands);
    for (std::size_t j = 0; j < cs.scale->cg_ligands; ++j) {
      rct::TaskDescription t;
      t.name = "cg-esmacs";
      t.whole_nodes = cs.scale->cg_whole_nodes;
      t.duration = cs.scale->cg_seconds;
      tasks.push_back(std::move(t));
    }
    return tasks;
  }

  std::vector<rct::TaskDescription> tasks;
  tasks.reserve(s_->cg_pick.size());
  CampaignState* st = &cs;
  auto scratch = s_;
  for (std::size_t j = 0; j < s_->cg_pick.size(); ++j) {
    rct::TaskDescription t;
    t.name = "cg-" + s_->dock_results[s_->cg_pick[j]].ligand_id;
    t.gpus = 1;
    t.duration = cs.config->sim_durations.cg;
    t.payload = [st, scratch, j] {
      fe::EsmacsConfig cfg = st->config->esmacs_cg;
      cfg.keep_trajectories = true;  // S2 consumes the ensembles
      scratch->cg_results[j] = fe::run_esmacs(
          scratch->cg_systems[j], scratch->cg_rotatable[j], cfg,
          item_seed(st->config->seed,
                    iter_salt(0xc6, scratch->iteration), j),
          st->backend->compute_pool());
    };
    tasks.push_back(std::move(t));
  }
  return tasks;
}

void CgEsmacsStage::merge(CampaignState& cs) {
  if (cs.scale) return;
  for (std::size_t j = 0; j < s_->cg_pick.size(); ++j) {
    const auto& id = s_->dock_results[s_->cg_pick[j]].ligand_id;
    auto& rec = cs.report->compounds.at(id);
    rec.cg_energy = s_->cg_results[j].binding_free_energy;
    rec.cg_error = s_->cg_results[j].std_error;
    rec.cg_done = true;
    cs.report->flops->add(
        "S3-CG",
        s_->cg_results[j].md_steps *
            md::flops_per_md_step(
                s_->cg_systems[j].topology.bead_count(),
                static_cast<std::uint64_t>(
                    s_->cg_systems[j].topology.bead_count()) *
                    24));
  }
}

}  // namespace impeccable::core::stages
