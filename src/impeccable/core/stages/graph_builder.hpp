#pragma once
// Assembles the campaign's stage graph: five stage modules per iteration,
// chained ML1 -> S1 -> S3-CG -> S2 -> S3-FG, plus the cross-iteration
// feedback edge. Used by Campaign::run() and by the scale benches (which
// install a ScaleModel on the state and run the same graph on a SimBackend).

#include <functional>
#include <memory>

#include "impeccable/core/stages/campaign_state.hpp"
#include "impeccable/rct/entk.hpp"

namespace impeccable::core::stages {

struct CampaignGraphIds {
  rct::NodeId ml1 = rct::kNoNode;
  rct::NodeId s1 = rct::kNoNode;
  rct::NodeId cg = rct::kNoNode;
  rct::NodeId s2 = rct::kNoNode;
  rct::NodeId fg = rct::kNoNode;
};

struct CampaignGraphOptions {
  /// Assign critical-path node priorities from config->sim_durations: each
  /// node's priority is the ensemble tail it gates within its iteration
  /// (CG -> cg+s2+fg, S2 -> s2+fg, FG -> fg, ML1 -> ml1+cg+s2+fg since it
  /// gates the whole chain at near-zero cost, S1 -> dock), so
  /// under ReadyOrder::kPriority the long CG/S2/FG waves that gate the
  /// pipelined makespan preempt bulk ML1/S1 work in the backend queues.
  /// Scheduling-only: priorities never change what any stage computes.
  bool critical_path_priority = false;
  /// Added to every node priority of this graph — the per-target weight a
  /// TargetPolicy steers (rich targets outbid stale ones).
  double priority_bias = 0.0;
  /// Runs (serialized with all merges) right after iteration `iter`'s S1
  /// feedback merge — the earliest point realized hit rates exist.
  /// MultiCampaign re-weights this target's not-yet-launched nodes from
  /// here via StageGraph::set_priority.
  std::function<void(rct::StageGraph&, int iter)> on_s1_merged;
};

/// Add `iterations` campaign iterations to `graph` over the shared state.
///
/// Sequential mode (pipelined = false): iteration i+1's ML1 depends on
/// iteration i's S3-FG — the strict one-iteration-at-a-time loop of the
/// original monolith.
///
/// Pipelined mode (pipelined = true): iteration i+1's ML1 depends only on
/// iteration i's S1 merge — the earliest point its training data exists —
/// so iteration i+1's surrogate retrain and docking overlap iteration i's
/// CG/S2/FG tail. Per-(iteration, stage) seeding keeps the science bitwise
/// identical between the two modes.
///
/// Returns the node ids of every iteration, in order.
std::vector<CampaignGraphIds> add_campaign_graph(
    rct::StageGraph& graph, const std::shared_ptr<CampaignState>& state,
    int iterations, bool pipelined, const CampaignGraphOptions& opts = {});

/// The per-stage critical-path priorities used under
/// CampaignGraphOptions::critical_path_priority (before priority_bias).
struct StageTails {
  double ml1 = 0.0, s1 = 0.0, cg = 0.0, s2 = 0.0, fg = 0.0;
};
/// Real campaigns: per-task sim durations, same tails for every target.
StageTails stage_tails(const ExecConfig::StageDurations& d);
/// Virtual campaigns: aggregate remaining node-seconds of the target's own
/// ScaleModel, so heterogeneous co-scheduled targets rank against each
/// other (used automatically when CampaignState::scale is set).
StageTails stage_tails(const ScaleModel& m);

}  // namespace impeccable::core::stages
