#pragma once
// Assembles the campaign's stage graph: five stage modules per iteration,
// chained ML1 -> S1 -> S3-CG -> S2 -> S3-FG, plus the cross-iteration
// feedback edge. Used by Campaign::run() and by the scale benches (which
// install a ScaleModel on the state and run the same graph on a SimBackend).

#include <memory>

#include "impeccable/core/stages/campaign_state.hpp"
#include "impeccable/rct/entk.hpp"

namespace impeccable::core::stages {

struct CampaignGraphIds {
  rct::NodeId ml1 = rct::kNoNode;
  rct::NodeId s1 = rct::kNoNode;
  rct::NodeId cg = rct::kNoNode;
  rct::NodeId s2 = rct::kNoNode;
  rct::NodeId fg = rct::kNoNode;
};

/// Add `iterations` campaign iterations to `graph` over the shared state.
///
/// Sequential mode (pipelined = false): iteration i+1's ML1 depends on
/// iteration i's S3-FG — the strict one-iteration-at-a-time loop of the
/// original monolith.
///
/// Pipelined mode (pipelined = true): iteration i+1's ML1 depends only on
/// iteration i's S1 merge — the earliest point its training data exists —
/// so iteration i+1's surrogate retrain and docking overlap iteration i's
/// CG/S2/FG tail. Per-(iteration, stage) seeding keeps the science bitwise
/// identical between the two modes.
///
/// Returns the node ids of every iteration, in order.
std::vector<CampaignGraphIds> add_campaign_graph(
    rct::StageGraph& graph, const std::shared_ptr<CampaignState>& state,
    int iterations, bool pipelined);

}  // namespace impeccable::core::stages
