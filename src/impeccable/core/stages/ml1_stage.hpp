#pragma once
// ML1 — surrogate retrain + library-wide inference, then selection of the
// docking candidates (top slice + exploration sample) in the merge step.

#include <memory>

#include "impeccable/core/stages/stage.hpp"
#include "impeccable/ml/surrogate.hpp"

namespace impeccable::core::stages {

class Ml1Stage : public Stage {
 public:
  Ml1Stage(int iteration, std::shared_ptr<IterationScratch> scratch)
      : iter_(iteration), s_(std::move(scratch)) {}

  const char* name() const override { return "ML1"; }
  std::vector<rct::TaskDescription> build(CampaignState& cs) override;
  void merge(CampaignState& cs) override;

 private:
  int iter_;
  std::shared_ptr<IterationScratch> s_;
  std::unique_ptr<ml::SurrogateModel> surrogate_;
};

}  // namespace impeccable::core::stages
