#pragma once
// S3-FG — fine ESMACS on the outlier conformations of the top CG binders.
// The merge is the iteration's closing step: it records energies, finalizes
// the iteration metrics, emits the iteration span, and rewrites the periodic
// checkpoint.

#include <memory>

#include "impeccable/core/stages/stage.hpp"

namespace impeccable::core::stages {

class FgEsmacsStage : public Stage {
 public:
  FgEsmacsStage(int iteration, std::shared_ptr<IterationScratch> scratch)
      : iter_(iteration), s_(std::move(scratch)) {}

  const char* name() const override { return "S3-FG"; }
  std::vector<rct::TaskDescription> build(CampaignState& cs) override;
  void merge(CampaignState& cs) override;

 private:
  int iter_;
  std::shared_ptr<IterationScratch> s_;
};

}  // namespace impeccable::core::stages
