#pragma once
// MultiCampaign — the paper's actual operating mode (Sec. 6.1.2, Fig. 3): a
// dozen protein targets screened concurrently through ONE shared EnTK/RAPTOR
// infrastructure, not one Campaign::run() per target.
//
// N CampaignStates (one per Target, each with its own ScienceConfig and
// CampaignReport) are lowered into a single StageGraph executed by one
// AppManager on one shared backend. Co-scheduling is science-neutral by
// construction: every science decision draws from functional per-item seeds
// (item_seed/iter_salt over the target's own seeds) and every merge is
// serialized by the engine against per-target state, so each target's
// science_fingerprint() is bitwise identical to its single-target run — no
// matter how many targets share the machine, which ReadyOrder the manager
// uses, or what a TargetPolicy does to the priorities.
//
// Scheduling is where the targets interact: critical-path node priorities
// (stages::stage_tails) make CG/S2/FG ensemble waves preempt bulk dock
// waves in the shared cluster queue, and after each target's S1 feedback
// merge a pluggable TargetPolicy re-weights that target's remaining nodes
// by realized hit rate — rich targets outbid stale ones for the backend.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "impeccable/core/campaign.hpp"
#include "impeccable/core/stages/campaign_state.hpp"
#include "impeccable/core/stages/graph_builder.hpp"

namespace impeccable::core {

/// Observed progress of one target, handed to the TargetPolicy after each
/// of its S1 feedback merges.
struct TargetProgress {
  std::size_t target = 0;  ///< index in add order
  int iteration = 0;       ///< iteration whose S1 merge just ran
  std::size_t docked = 0;  ///< compounds docked so far (all iterations)
  std::size_t hits = 0;    ///< docked compounds at/below the hit threshold
  double best_dock_score = 0.0;  ///< lowest docking energy seen (0 if none)

  double hit_rate() const {
    return docked > 0 ? static_cast<double>(hits) / static_cast<double>(docked)
                      : 0.0;
  }
};

/// Re-weights targets each iteration. Strictly scheduling-side: the boost
/// moves a target's nodes up or down the shared queues but never changes
/// budgets, selection, or any other science-bearing decision — that is what
/// keeps fingerprints invariant to the policy chosen.
class TargetPolicy {
 public:
  virtual ~TargetPolicy() = default;
  /// Extra priority added to every not-yet-launched node of this target.
  virtual double priority_boost(const TargetProgress& progress) const = 0;
};

/// The default re-weighting: rich targets steal scheduling preference from
/// stale ones proportionally to their realized hit rate.
class HitRatePolicy final : public TargetPolicy {
 public:
  explicit HitRatePolicy(double weight = 600.0) : weight_(weight) {}
  double priority_boost(const TargetProgress& progress) const override {
    return weight_ * progress.hit_rate();
  }

 private:
  double weight_;
};

struct MultiCampaignOptions {
  /// Ready-queue discipline of the shared AppManager. Priority order is the
  /// point of co-scheduling; kFifo reproduces independent-campaign behavior
  /// (and is the bench baseline).
  rct::AppManagerOptions::ReadyOrder ready_order =
      rct::AppManagerOptions::ReadyOrder::kPriority;
  /// Critical-path node priorities from sim_durations (stages::stage_tails).
  bool critical_path_priority = true;
  /// Dock scores at/below this energy count as hits for TargetProgress.
  double hit_threshold = -6.0;
  /// Optional per-iteration target re-weighting. Borrowed, may be null;
  /// must outlive run().
  const TargetPolicy* policy = nullptr;
};

struct MultiCampaignReport {
  std::vector<std::string> targets;     ///< names, add order
  std::vector<CampaignReport> reports;  ///< parallel to `targets`
  rct::GraphRunReport graph;            ///< shared-run scheduling report
  rct::SessionProfile profile;          ///< whole-session task records
};

class MultiCampaign {
 public:
  explicit MultiCampaign(ExecConfig exec, MultiCampaignOptions opts = {});

  /// Add one real target with its per-target science slice. Returns the
  /// target's index. With more than one target, per-target checkpoint and
  /// resume paths get a ".<target-name>" suffix so targets do not clobber
  /// each other's files.
  std::size_t add_target(Target target, ScienceConfig science);

  /// Add a virtual target driven by a ScaleModel: `iterations` graph
  /// iterations of chunked, calibrated-duration tasks and no-op merges —
  /// how campaign_at_scale co-schedules heterogeneous 10^8-ligand targets
  /// on a SimBackend.
  std::size_t add_virtual_target(std::string name, int iterations,
                                 stages::ScaleModel scale);

  std::size_t target_count() const { return entries_.size(); }

  /// Run every target's campaign through one shared graph (blocking).
  /// Uses a LocalBackend internally.
  MultiCampaignReport run();
  /// Same, on an externally-owned backend (SimBackend for scale studies,
  /// RaptorBackend(SimBackend) for the full overlay interaction).
  MultiCampaignReport run(rct::ExecutionBackend& backend);

 private:
  struct Entry {
    std::string name;
    Target target;
    ScienceConfig science;
    stages::ScaleModel scale;
    int iterations = 0;  ///< virtual targets only
    bool is_virtual = false;
    /// Composed per-target view (science + shared exec), rebuilt each run;
    /// CampaignState holds a pointer into it, so entries are heap-stable.
    CampaignConfig config;
  };

  void apply_policy(rct::StageGraph& graph, Entry& entry, std::size_t index,
                    int iteration, const CampaignReport& report,
                    const std::vector<stages::CampaignGraphIds>& ids) const;

  ExecConfig exec_;
  MultiCampaignOptions opts_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace impeccable::core
