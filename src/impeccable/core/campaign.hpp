#pragma once
// The IMPECCABLE campaign (Fig. 1): the iterative loop
//
//   ML1 (surrogate inference over the library)
//     -> S1 (AutoDock on the predicted top slice + an exploration sample)
//     -> S3-CG (coarse ESMACS on the structurally most diverse docked hits)
//     -> S2 (3D-AAE over CG trajectories + LOF outlier conformations)
//     -> S3-FG (fine ESMACS on outlier conformations of the top CG binders)
//     -> feedback (docking scores retrain ML1 for the next iteration)
//
// Each iteration is one five-stage EnTK pipeline; stages are constructed
// adaptively in post_exec callbacks because each stage's task list depends
// on the previous stage's results (Sec. 6.1, Fig. 2).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "impeccable/chem/library.hpp"
#include "impeccable/dock/engine.hpp"
#include "impeccable/fe/esmacs.hpp"
#include "impeccable/hpc/flops.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/ml/aae.hpp"
#include "impeccable/ml/surrogate.hpp"
#include "impeccable/rct/entk.hpp"
#include "impeccable/rct/profiler.hpp"

namespace impeccable::core {

/// One target protein: its docking receptor(s) with compiled grids and the
/// matching coarse-grained MD protein, all derived from one seed. Multiple
/// "crystal structures" (Sec. 7.1.2) are receptor variants of the same
/// target; docking takes the best pose over all of them.
struct Target {
  std::string name;
  std::uint64_t seed = 0;
  dock::Receptor receptor;  ///< the primary structure
  std::shared_ptr<const dock::AffinityGrid> grid;  ///< == grids.front()
  std::vector<std::shared_ptr<const dock::AffinityGrid>> grids;
  md::System protein;

  static Target make(const std::string& name, std::uint64_t seed,
                     int protein_residues = 60, int grid_nodes = 25,
                     int crystal_structures = 1);
};

/// Per-target science parameters: everything that decides WHAT the campaign
/// computes — library, budgets, fractions, engine options. Two targets in
/// one MultiCampaign each carry their own ScienceConfig; the science
/// fingerprint is a pure function of (Target, ScienceConfig, ExecConfig
/// seeds) and never of scheduling.
struct ScienceConfig {
  std::size_t library_size = 400;
  std::uint64_t library_seed = 2020;
  std::string library_name = "OZD";

  int iterations = 2;
  /// Fraction of the library ML1 promotes to docking.
  double dock_top_fraction = 0.10;
  /// Extra exploration sample from below the cut (the paper keeps 15-20%
  /// of the docked budget for lower-ranked compounds, Sec. 7.1.1).
  double explore_fraction = 0.18;
  /// Seed docking budget for iteration 0 (before ML1 has training data).
  std::size_t bootstrap_docks = 60;

  /// RES-driven budgeting (Sec. 7.1.1: "The RES plot also provides a
  /// quantitative estimate of the number of compounds we have to sample"):
  /// when enabled, iterations > 0 size their docking budget as the smallest
  /// screening fraction whose predicted-top slice covers
  /// `auto_budget_coverage` of the true top `auto_budget_top`, estimated on
  /// the already-docked validation set. Overrides dock_top_fraction.
  bool auto_dock_budget = false;
  double auto_budget_top = 0.05;
  double auto_budget_coverage = 0.5;

  /// 3D conformers embedded and docked per ligand (S1 conformer
  /// enumeration); the best-scoring conformer's pose advances.
  int conformers_per_ligand = 1;

  /// If > 0, ligands are protonated for this pH before featurization and
  /// docking (the "ready-to-dock" library preparation). 0 = use molecules
  /// as generated.
  double prepare_ligands_at_ph = 0.0;

  /// Compounds promoted to S3-CG per iteration (diversity-picked).
  std::size_t cg_compounds = 12;
  /// Top CG binders advanced to S2/S3-FG.
  std::size_t top_binders = 3;
  /// Outlier conformations per binder for S3-FG (the paper uses 5).
  std::size_t outliers_per_binder = 3;

  dock::DockOptions dock;
  fe::EsmacsConfig esmacs_cg = fe::cg_config(0.5);
  fe::EsmacsConfig esmacs_fg = fe::fg_config(0.25);
  ml::SurrogateOptions surrogate;
  ml::AaeOptions aae;
};

/// Shared execution parameters: everything that decides HOW the campaign
/// runs — threads, seeds, retries, overheads, pipelining, checkpointing,
/// observability. One ExecConfig is shared by every target of a
/// MultiCampaign. None of these fields may change a science_fingerprint()
/// except `seed` (the base of the functional per-item seed derivation).
struct ExecConfig {
  std::size_t threads = 0;  ///< LocalBackend worker threads (0 = hardware)
  std::uint64_t seed = 0xca4'9a19ULL;

  /// Cross-iteration pipelining (Sec. 5.2.1: "pipelines run concurrently,
  /// each progressing at its own pace"): when true, iteration i+1's ML1
  /// retrain/infer depends only on iteration i's S1 feedback merge — not on
  /// its S3-FG — so next-iteration docking overlaps with the current
  /// iteration's S3-CG/S2/S3-FG. Per-(iteration, stage) seeding keeps the
  /// science bitwise identical to sequential mode.
  bool pipeline_iterations = false;

  /// EnTK AppManager wiring (rct::AppManagerOptions), previously silently
  /// defaulted inside run(): failed tasks are resubmitted up to max_retries
  /// times; each non-root stage pays the fixed transition overhead in
  /// backend seconds.
  int max_retries = 0;
  double stage_transition_overhead = 0.5;

  /// When set, a full checkpoint (core::write_checkpoint) is rewritten here
  /// after each iteration's feedback merge, so a killed campaign resumes via
  /// resume_checkpoint without redoing finished docking work.
  std::string checkpoint_path;

  /// Virtual per-task durations in backend seconds, used only when the
  /// campaign runs on a SimBackend (LocalBackend measures real time). The
  /// defaults keep the paper's proportions: S3 ensembles dominate, docking
  /// is cheap per ligand, S2 sits in between.
  struct StageDurations {
    double ml1 = 60.0;   ///< the train+infer task
    double dock = 0.5;   ///< per docked ligand
    double cg = 600.0;   ///< per S3-CG ensemble
    double s2 = 300.0;   ///< the AAE train + LOF task
    double fg = 1200.0;  ///< per S3-FG ensemble
  };
  StageDurations sim_durations;

  /// Observability: when set, the campaign installs this recorder globally
  /// for the duration of run(), wires its clock to the backend's wall clock,
  /// and every layer (stage, task, dock, ml, fe, pool) records spans and
  /// metrics into it. Null = a private recorder that still feeds
  /// CampaignReport::profile but is discarded afterwards.
  obs::Recorder* recorder = nullptr;

  /// Resume from a checkpoint written by core::write_checkpoint: previously
  /// docked/estimated compounds are restored and re-seed the ML1 training
  /// set, so a resumed campaign does not redo finished work.
  std::string resume_checkpoint;

  /// Where the library lives (the ML1 data path). kInMemory parses and
  /// depicts every compound up front — the historical behavior, fine to
  /// ~1e6 ligands. kMmapStore spills the generated library once into an
  /// on-disk chem::LigandStore and streams parse/depict/predict in bounded
  /// windows, so the real code path runs at 1e8+ ligands. The science
  /// fingerprint is bitwise identical between the two (an ExecConfig field
  /// by contract; pinned in tests/library_store_test.cpp).
  enum class LibraryBackend { kInMemory, kMmapStore };
  LibraryBackend library_backend = LibraryBackend::kInMemory;

  /// Store directory for kMmapStore. Empty = a per-(name, size, seed)
  /// directory under the system temp path. A directory already holding a
  /// matching store is reused instead of re-spilled.
  std::string library_store_dir;

  /// Ligands per streaming featurization window: bounds ML1's resident
  /// image memory for both backends (the spilled score array is file-backed
  /// under kMmapStore, so peak RSS tracks this window, not library size).
  std::size_t featurize_window = 4096;
};

/// Compatibility aggregate: the historical flat config is exactly the two
/// slices joined, so every existing `cfg.field = ...` call site compiles
/// unchanged while new code passes the slices separately.
struct CampaignConfig : ScienceConfig, ExecConfig {
  CampaignConfig() = default;
  CampaignConfig(ScienceConfig science, ExecConfig exec)
      : ScienceConfig(std::move(science)), ExecConfig(std::move(exec)) {}

  const ScienceConfig& science() const { return *this; }
  const ExecConfig& exec() const { return *this; }
};

/// Per-compound record accumulated across the campaign.
struct CompoundRecord {
  std::string id;
  std::string smiles;
  double surrogate_score = 0.0;  ///< ML1 prediction in [0, 1]
  double dock_score = 0.0;       ///< S1 best pose energy
  bool docked = false;
  double cg_energy = 0.0;        ///< S3-CG binding free energy
  double cg_error = 0.0;
  bool cg_done = false;
  std::vector<double> fg_energies;  ///< S3-FG per outlier conformation
};

struct IterationMetrics {
  int iteration = 0;
  std::size_t library_screened = 0;  ///< compounds covered by ML1 inference
  std::size_t docked = 0;
  std::size_t cg_runs = 0;
  std::size_t fg_runs = 0;
  double wall_seconds = 0.0;
  /// Raw throughput: ligands docked per second of stage-S1 wall time.
  double dock_throughput = 0.0;
  /// Scientific performance: library compounds effectively triaged per
  /// second of whole-iteration wall time (the ML1 leverage).
  double effective_ligands_per_second = 0.0;
  /// Spearman rank correlation between the surrogate prediction and the
  /// actual docking score on this iteration's docked set (feedback quality).
  double surrogate_spearman = 0.0;
  double best_cg_energy = 0.0;
  double best_fg_energy = 0.0;

  /// One JSON object (obs::json writer — deterministic doubles).
  void to_json(std::ostream& os) const;
};

struct CampaignReport {
  std::vector<IterationMetrics> iterations;
  std::map<std::string, CompoundRecord> compounds;  ///< by compound id
  /// Shared pointer: FlopCounter holds a mutex and is not movable.
  std::shared_ptr<hpc::FlopCounter> flops = std::make_shared<hpc::FlopCounter>();
  /// Per-task execution records of the whole campaign (submit/start/end),
  /// exportable via SessionProfile::write_csv.
  rct::SessionProfile profile;

  /// Compounds with completed CG runs sorted by CG energy (best first).
  std::vector<const CompoundRecord*> cg_ranking() const;

  /// Canonical JSON serialization of every science-bearing field (compound
  /// records, per-iteration counts/energies/correlations, flop totals) with
  /// all wall-clock-derived values excluded. Byte-identical across thread
  /// counts, backends (Local vs Sim), and sequential vs pipelined mode.
  std::string science_fingerprint() const;
};

class Campaign {
 public:
  Campaign(Target target, const CampaignConfig& config);
  /// Split-config form: per-target science plus shared execution settings.
  Campaign(Target target, ScienceConfig science, ExecConfig exec);

  /// Run the full campaign (blocking). Uses a LocalBackend internally.
  CampaignReport run();

  /// Run the full campaign on an externally-owned backend: the same stage
  /// modules (core/stages/) drive LocalBackend (real payloads, wall time)
  /// and SimBackend (payloads in the event loop, virtual time — scale
  /// studies and deterministic scheduling tests).
  CampaignReport run(rct::ExecutionBackend& backend);

  const CampaignConfig& config() const { return config_; }
  const Target& target() const { return target_; }

 private:
  Target target_;
  CampaignConfig config_;
};

}  // namespace impeccable::core
