#include "impeccable/core/checkpoint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace impeccable::core {

namespace {

constexpr const char* kHeader =
    "id,smiles,surrogate_score,docked,dock_score,cg_done,cg_energy,cg_error,"
    "fg_energies";

}  // namespace

void write_checkpoint(const CampaignReport& report, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_checkpoint: cannot open " + path);
  f << kHeader << "\n";
  for (const auto& [id, rec] : report.compounds) {
    f << rec.id << ',' << rec.smiles << ',' << rec.surrogate_score << ','
      << (rec.docked ? 1 : 0) << ',' << rec.dock_score << ','
      << (rec.cg_done ? 1 : 0) << ',' << rec.cg_energy << ',' << rec.cg_error
      << ',';
    for (std::size_t k = 0; k < rec.fg_energies.size(); ++k) {
      if (k) f << ';';
      f << rec.fg_energies[k];
    }
    f << "\n";
  }
}

std::map<std::string, CompoundRecord> read_checkpoint(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_checkpoint: cannot open " + path);
  std::string line;
  if (!std::getline(f, line) || line != kHeader)
    throw std::runtime_error("read_checkpoint: bad header in " + path);

  std::map<std::string, CompoundRecord> out;
  std::size_t line_no = 1;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() < 8)
      throw std::runtime_error("read_checkpoint: short row at line " +
                               std::to_string(line_no));
    try {
      CompoundRecord rec;
      rec.id = fields[0];
      rec.smiles = fields[1];
      rec.surrogate_score = std::stod(fields[2]);
      rec.docked = fields[3] == "1";
      rec.dock_score = std::stod(fields[4]);
      rec.cg_done = fields[5] == "1";
      rec.cg_energy = std::stod(fields[6]);
      rec.cg_error = std::stod(fields[7]);
      if (fields.size() > 8 && !fields[8].empty()) {
        std::stringstream fg(fields[8]);
        std::string e;
        while (std::getline(fg, e, ';')) rec.fg_energies.push_back(std::stod(e));
      }
      out.emplace(rec.id, std::move(rec));
    } catch (const std::exception&) {
      throw std::runtime_error("read_checkpoint: malformed row at line " +
                               std::to_string(line_no));
    }
  }
  return out;
}

void write_scores_csv(const std::vector<std::pair<std::string, double>>& scores,
                      const std::map<std::string, std::string>& id_to_smiles,
                      const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_scores_csv: cannot open " + path);
  f << "id,smiles,score\n";
  for (const auto& [id, score] : scores) {
    const auto it = id_to_smiles.find(id);
    f << id << ',' << (it == id_to_smiles.end() ? "" : it->second) << ','
      << score << "\n";
  }
}

}  // namespace impeccable::core
