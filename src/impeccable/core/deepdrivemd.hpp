#pragma once
// DeepDriveMD — the S2 adaptive-sampling loop (Sec. 5.1.4, refs [28, 29]).
//
// The full iterative protocol, not just one pass: each round runs an MD
// ensemble, aggregates the Cα point clouds, (re)trains the 3D-AAE, embeds
// all conformations seen so far, picks LOF outliers on the latent manifold,
// and *restarts* the next round's simulations from those outlier
// conformations. The paper credits this loop with orders-of-magnitude
// sampling acceleration over plain ensemble MD; the bench
// `ablation_deepdrivemd` measures the coverage gain on our substrate.

#include <cstdint>
#include <vector>

#include "impeccable/common/thread_pool.hpp"
#include "impeccable/md/analysis.hpp"
#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"
#include "impeccable/ml/aae.hpp"

namespace impeccable::core {

struct DeepDriveMdOptions {
  int rounds = 3;
  int simulations_per_round = 4;      ///< concurrent MD tasks per round
  md::SimulationOptions simulation;   ///< per-task MD schedule
  ml::AaeOptions aae;
  int lof_neighbors = 10;
  /// Fraction of next-round starts taken from latent outliers (the rest
  /// continue from the previous round's final frames).
  double outlier_restart_fraction = 1.0;
  /// Include ligand beads in the AAE point cloud. For LPC systems the
  /// ligand's pose carries the rare-event signal (partial unbinding,
  /// repositioning); protein-only clouds match the paper's Cα input.
  bool ligand_aware = false;
  std::uint64_t seed = 0xdd3dULL;
};

struct DeepDriveMdRound {
  int round = 0;
  std::size_t frames_collected = 0;
  float aae_reconstruction = 0.0f;  ///< final-epoch training Chamfer
  double mean_outlier_lof = 0.0;
  /// Conformational coverage proxy: mean pairwise RMSD among a subsample of
  /// all frames seen so far (grows as new regions are reached).
  double coverage = 0.0;
  /// Rare-event progress: the maximum RMSD from the starting conformation
  /// reached by any frame so far (ligand beads in ligand_aware mode).
  double frontier = 0.0;
};

struct DeepDriveMdResult {
  std::vector<DeepDriveMdRound> rounds;
  /// Every stored conformation (positions of the full system) with round tag.
  std::vector<std::vector<common::Vec3>> conformations;
  std::vector<int> conformation_round;
  std::uint64_t md_steps = 0;
};

/// Run the adaptive loop on one system. If `adaptive` is false the restart
/// step is skipped (plain ensemble MD continuation) — the ablation baseline.
DeepDriveMdResult run_deepdrivemd(const md::System& system,
                                  const DeepDriveMdOptions& opts,
                                  bool adaptive = true,
                                  common::ThreadPool* pool = nullptr);

/// Coverage proxy: mean pairwise RMSD of the selected beads over up to
/// `sample` random pairs of the given conformations.
double conformational_coverage(const md::System& system,
                               const std::vector<std::vector<common::Vec3>>& confs,
                               std::uint64_t seed, int sample = 400,
                               md::BeadKind selection = md::BeadKind::Protein);

}  // namespace impeccable::core
