#include "impeccable/core/deepdrivemd.hpp"

#include <algorithm>

#include "impeccable/common/kabsch.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/common/stats.hpp"
#include "impeccable/ml/lof.hpp"

namespace impeccable::core {

using common::Rng;
using common::Vec3;

double conformational_coverage(const md::System& system,
                               const std::vector<std::vector<Vec3>>& confs,
                               std::uint64_t seed, int sample,
                               md::BeadKind selection) {
  if (confs.size() < 2) return 0.0;
  const auto sel = system.topology.selection(selection);
  if (sel.empty()) return 0.0;
  auto gather = [&](const std::vector<Vec3>& pos) {
    std::vector<Vec3> out;
    out.reserve(sel.size());
    for (int i : sel) out.push_back(pos[static_cast<std::size_t>(i)]);
    return out;
  };
  Rng rng(seed);
  common::RunningStats rs;
  // Protein coverage is about internal deformation (superpose first);
  // ligand coverage is about pose displacement in the receptor frame
  // (raw RMSD — superposition would erase unbinding motion).
  const bool superpose = selection == md::BeadKind::Protein;
  for (int k = 0; k < sample; ++k) {
    const std::size_t a = rng.index(confs.size());
    std::size_t b = rng.index(confs.size());
    if (a == b) b = (b + 1) % confs.size();
    const auto pa = gather(confs[a]);
    const auto pb = gather(confs[b]);
    rs.add(superpose ? common::rmsd_superposed(pa, pb)
                     : common::rmsd_raw(pa, pb));
  }
  return rs.mean();
}

DeepDriveMdResult run_deepdrivemd(const md::System& system,
                                  const DeepDriveMdOptions& opts,
                                  bool adaptive, common::ThreadPool* pool) {
  DeepDriveMdResult res;
  Rng rng(opts.seed);

  // Current restart points: initially everything starts from the input.
  std::vector<std::vector<Vec3>> starts(
      static_cast<std::size_t>(opts.simulations_per_round), system.positions);

  // All clouds seen so far (the AAE training set grows every round).
  // Protein mode: centered Cα clouds (the paper's input). Ligand-aware mode:
  // ligand beads *relative to the protein centroid*, so the latent manifold
  // encodes the binding pose directly instead of burying it under the much
  // larger protein point set.
  const auto protein_sel = system.topology.selection(md::BeadKind::Protein);
  const auto ligand_sel = system.topology.selection(md::BeadKind::Ligand);
  auto make_cloud = [&](const md::Frame& frame) {
    if (!opts.ligand_aware || ligand_sel.empty())
      return md::point_cloud(frame, protein_sel);
    Vec3 c;
    for (int i : protein_sel) c += frame.positions[static_cast<std::size_t>(i)];
    c /= static_cast<double>(protein_sel.size());
    std::vector<Vec3> cloud;
    cloud.reserve(ligand_sel.size());
    for (int i : ligand_sel)
      cloud.push_back(frame.positions[static_cast<std::size_t>(i)] - c);
    return cloud;
  };
  std::vector<std::vector<Vec3>> clouds;
  std::vector<std::size_t> cloud_to_conf;

  for (int round = 0; round < opts.rounds; ++round) {
    DeepDriveMdRound stats;
    stats.round = round;

    // ---- MD ensemble ----
    // Only the very first round minimizes (the input geometry may need it);
    // later rounds must NOT re-minimize or the restart conformations —
    // including the outliers we restarted from on purpose — would be
    // quenched back into the nearest basin.
    md::SimulationOptions sim_opts = opts.simulation;
    if (round > 0) sim_opts.minimize_iterations = 0;
    std::vector<md::SimulationResult> sims(starts.size());
    auto run_one = [&](std::size_t s) {
      md::System start = system;
      start.positions = starts[s];
      sims[s] = md::run_replica(start, sim_opts,
                                opts.seed ^ (round * 131 + s * 7 + 1));
    };
    if (pool) {
      common::parallel_for(*pool, 0, starts.size(), run_one, 1);
    } else {
      for (std::size_t s = 0; s < starts.size(); ++s) run_one(s);
    }

    // ---- aggregate ----
    std::vector<std::size_t> last_frame_of(starts.size(), 0);
    for (std::size_t s = 0; s < sims.size(); ++s) {
      res.md_steps += sims[s].md_steps;
      for (const auto& frame : sims[s].trajectory.frames) {
        res.conformations.push_back(frame.positions);
        res.conformation_round.push_back(round);
        clouds.push_back(make_cloud(frame));
        cloud_to_conf.push_back(res.conformations.size() - 1);
        last_frame_of[s] = res.conformations.size() - 1;
      }
      stats.frames_collected += sims[s].trajectory.size();
    }

    // ---- (re)train the 3D-AAE on everything seen so far ----
    ml::Aae3d aae(static_cast<int>(clouds.front().size()), opts.aae);
    const auto report = aae.train(clouds);
    stats.aae_reconstruction = report.epochs.back().reconstruction;

    // ---- outlier detection on the latent manifold ----
    // LOF runs over everything seen (density estimated on the full history),
    // but restart candidates come from the *current* round's frames only —
    // as in DeepDriveMD, which restarts from novel states of the latest
    // simulation data; old sparse frames would otherwise pull the sampler
    // back to the start.
    const auto latent = aae.embed_batch(clouds);
    const auto lof = ml::local_outlier_factor(
        latent, std::min<int>(opts.lof_neighbors,
                              static_cast<int>(latent.size()) - 1));
    std::vector<std::pair<double, std::size_t>> current;
    for (std::size_t c = 0; c < clouds.size(); ++c)
      if (res.conformation_round[cloud_to_conf[c]] == round)
        current.emplace_back(lof[c], c);
    std::sort(current.rbegin(), current.rend());
    // Greedy diversity filter: restart points must be mutually distant in
    // latent space, or the whole next-round ensemble collapses onto one
    // conformation and loses its parallel-exploration value.
    auto latent_dist = [&](std::size_t a, std::size_t b) {
      double acc = 0.0;
      for (std::size_t d = 0; d < latent[a].size(); ++d) {
        const double v = latent[a][d] - latent[b][d];
        acc += v * v;
      }
      return std::sqrt(acc);
    };
    std::vector<std::size_t> outliers;
    for (const auto& [score, c] : current) {
      if (outliers.size() >= static_cast<std::size_t>(opts.simulations_per_round))
        break;
      bool distinct = true;
      for (std::size_t o : outliers)
        if (latent_dist(c, o) < 1e-3) distinct = false;
      if (!distinct) continue;
      // Require separation from already-picked restarts relative to the
      // typical nearest-neighbour scale (approximated by the median latent
      // spread of the chosen set).
      bool far_enough = true;
      for (std::size_t o : outliers)
        if (latent_dist(c, o) <
            0.5 * latent_dist(current.front().second,
                              current.back().second) /
                static_cast<double>(current.size()))
          far_enough = false;
      if (far_enough) outliers.push_back(c);
    }
    // Backfill if the diversity filter was too strict.
    for (const auto& [score, c] : current) {
      if (outliers.size() >= static_cast<std::size_t>(opts.simulations_per_round))
        break;
      if (std::find(outliers.begin(), outliers.end(), c) == outliers.end())
        outliers.push_back(c);
    }
    for (std::size_t o : outliers) stats.mean_outlier_lof += lof[o];
    if (!outliers.empty())
      stats.mean_outlier_lof /= static_cast<double>(outliers.size());

    // ---- next round's restart points ----
    if (round + 1 < opts.rounds) {
      const std::size_t from_outliers =
          adaptive ? static_cast<std::size_t>(opts.outlier_restart_fraction *
                                              starts.size())
                   : 0;
      for (std::size_t s = 0; s < starts.size(); ++s) {
        if (s < from_outliers && s < outliers.size()) {
          starts[s] = res.conformations[cloud_to_conf[outliers[s]]];
        } else {
          // Continue from this simulation's final frame (plain ensemble MD).
          starts[s] = res.conformations[last_frame_of[s]];
        }
      }
    }

    stats.coverage = conformational_coverage(
        system, res.conformations, opts.seed ^ 0xc0fe ^ round, 400,
        opts.ligand_aware ? md::BeadKind::Ligand : md::BeadKind::Protein);
    {
      const auto& sel = (opts.ligand_aware && !ligand_sel.empty()) ? ligand_sel
                                                                   : protein_sel;
      auto gather = [&](const std::vector<Vec3>& pos) {
        std::vector<Vec3> out;
        out.reserve(sel.size());
        for (int i : sel) out.push_back(pos[static_cast<std::size_t>(i)]);
        return out;
      };
      const auto start_sel = gather(system.positions);
      for (const auto& conf : res.conformations) {
        const auto cur = gather(conf);
        const double d = opts.ligand_aware
                             ? common::rmsd_raw(start_sel, cur)
                             : common::rmsd_superposed(start_sel, cur);
        stats.frontier = std::max(stats.frontier, d);
      }
    }
    res.rounds.push_back(stats);
  }
  return res;
}

}  // namespace impeccable::core
