#include "impeccable/core/multi_campaign.hpp"

#include <algorithm>
#include <utility>

#include "impeccable/ml/gemm.hpp"
#include "impeccable/obs/recorder.hpp"
#include "impeccable/rct/backend.hpp"

namespace impeccable::core {

MultiCampaign::MultiCampaign(ExecConfig exec, MultiCampaignOptions opts)
    : exec_(std::move(exec)), opts_(opts) {}

std::size_t MultiCampaign::add_target(Target target, ScienceConfig science) {
  auto e = std::make_unique<Entry>();
  e->name = target.name;
  e->target = std::move(target);
  e->science = std::move(science);
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

std::size_t MultiCampaign::add_virtual_target(std::string name, int iterations,
                                              stages::ScaleModel scale) {
  auto e = std::make_unique<Entry>();
  e->name = std::move(name);
  e->scale = scale;
  e->iterations = iterations;
  e->is_virtual = true;
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

MultiCampaignReport MultiCampaign::run() {
  rct::LocalBackend local(exec_.threads);
  return run(local);
}

MultiCampaignReport MultiCampaign::run(rct::ExecutionBackend& raw) {
  MultiCampaignReport out;

  rct::ProfiledBackend backend(raw, exec_.recorder);
  // Every instrumented layer below (dock, ml, fe, pool) records through the
  // global recorder; restored on scope exit.
  obs::ScopedRecorder scoped(&backend.trace_recorder());
  struct PoolGuard {
    common::ThreadPool* prev;
    explicit PoolGuard(common::ThreadPool* p) : prev(ml::set_compute_pool(p)) {}
    ~PoolGuard() { ml::set_compute_pool(prev); }
  } pool_guard(raw.compute_pool());

  out.reports.resize(entries_.size());
  std::vector<std::shared_ptr<stages::CampaignState>> states;
  std::vector<std::vector<stages::CampaignGraphIds>> ids(entries_.size());
  rct::StageGraph graph;

  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = *entries_[i];
    out.targets.push_back(e.name);

    // Compose the per-target view fresh each run (idempotent), suffixing
    // checkpoint files per target when more than one shares the ExecConfig.
    e.config = CampaignConfig(e.science, exec_);
    if (entries_.size() > 1) {
      if (!e.config.checkpoint_path.empty())
        e.config.checkpoint_path += "." + e.name;
      if (!e.config.resume_checkpoint.empty())
        e.config.resume_checkpoint += "." + e.name;
    }

    CampaignReport& report = out.reports[i];
    auto state = std::make_shared<stages::CampaignState>();
    state->config = &e.config;
    state->backend = &backend;
    state->report = &report;
    int iters = 0;
    if (e.is_virtual) {
      state->scale = &e.scale;
      iters = e.iterations;
    } else {
      state->target = &e.target;
      state->init();
      iters = e.config.iterations;
    }
    report.iterations.resize(static_cast<std::size_t>(iters));
    for (int it = 0; it < iters; ++it)
      report.iterations[static_cast<std::size_t>(it)].iteration = it;

    stages::CampaignGraphOptions gopts;
    gopts.critical_path_priority = opts_.critical_path_priority;
    if (opts_.policy && !e.is_virtual) {
      Entry* entry = &e;
      CampaignReport* rep = &report;
      const std::vector<stages::CampaignGraphIds>* target_ids = &ids[i];
      gopts.on_s1_merged = [this, entry, i, rep,
                            target_ids](rct::StageGraph& g, int iter) {
        apply_policy(g, *entry, i, iter, *rep, *target_ids);
      };
    }
    ids[i] = stages::add_campaign_graph(graph, state, iters,
                                        e.config.pipeline_iterations, gopts);
    states.push_back(std::move(state));
  }

  rct::AppManagerOptions mopts;
  mopts.max_retries = exec_.max_retries;
  mopts.stage_transition_overhead = exec_.stage_transition_overhead;
  mopts.ready_order = opts_.ready_order;
  rct::AppManager manager(backend, mopts);
  out.graph = manager.run_graph(std::move(graph));

  if (common::ThreadPool* pool = raw.compute_pool())
    pool->publish_metrics(backend.trace_recorder().metrics());
  out.profile = backend.profile();
  for (CampaignReport& r : out.reports) r.profile = out.profile;
  return out;
}

void MultiCampaign::apply_policy(
    rct::StageGraph& graph, Entry& entry, std::size_t index, int iteration,
    const CampaignReport& report,
    const std::vector<stages::CampaignGraphIds>& ids) const {
  TargetProgress p;
  p.target = index;
  p.iteration = iteration;
  for (const auto& [id, rec] : report.compounds) {
    if (!rec.docked) continue;
    ++p.docked;
    if (rec.dock_score <= opts_.hit_threshold) ++p.hits;
    p.best_dock_score =
        p.docked == 1 ? rec.dock_score : std::min(p.best_dock_score, rec.dock_score);
  }
  const double boost = opts_.policy->priority_boost(p);

  // Re-weight everything of this target the scheduler has not committed
  // yet: this iteration's ensemble tail and all later iterations. Launched
  // nodes keep the priority they ran with (set_priority on them is inert).
  stages::StageTails t;
  if (opts_.critical_path_priority)
    t = stages::stage_tails(entry.config.sim_durations);
  graph.set_priority(ids[static_cast<std::size_t>(iteration)].cg, t.cg + boost);
  graph.set_priority(ids[static_cast<std::size_t>(iteration)].s2, t.s2 + boost);
  graph.set_priority(ids[static_cast<std::size_t>(iteration)].fg, t.fg + boost);
  for (std::size_t j = static_cast<std::size_t>(iteration) + 1; j < ids.size();
       ++j) {
    graph.set_priority(ids[j].ml1, t.ml1 + boost);
    graph.set_priority(ids[j].s1, t.s1 + boost);
    graph.set_priority(ids[j].cg, t.cg + boost);
    graph.set_priority(ids[j].s2, t.s2 + boost);
    graph.set_priority(ids[j].fg, t.fg + boost);
  }
}

}  // namespace impeccable::core
