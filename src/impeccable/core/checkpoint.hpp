#pragma once
// Campaign persistence.
//
// The production campaign ran "for several months" (abstract) across
// allocations and machines; state must survive between pilot jobs. We
// persist the per-compound records as a CSV checkpoint — the same shape as
// the ML1 -> S1 interchange ("the resulting lists of docking scores and
// metadata information such as ligand id and SMILES string are ... written
// into a CSV file", Sec. 6.1.1) — and campaigns can resume with their
// surrogate training data rebuilt from it.

#include <map>
#include <string>

#include "impeccable/core/campaign.hpp"

namespace impeccable::core {

/// Write every compound record to `path` as CSV
/// (id,smiles,surrogate,docked,dock_score,cg_done,cg_energy,cg_error,fg...).
void write_checkpoint(const CampaignReport& report, const std::string& path);

/// Read a checkpoint back into compound records.
/// Throws std::runtime_error on malformed files.
std::map<std::string, CompoundRecord> read_checkpoint(const std::string& path);

/// Write just (id, smiles, score) rows — the ML1 -> S1 interchange format.
void write_scores_csv(const std::vector<std::pair<std::string, double>>& scores,
                      const std::map<std::string, std::string>& id_to_smiles,
                      const std::string& path);

}  // namespace impeccable::core
