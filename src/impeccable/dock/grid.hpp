#pragma once
// Precomputed affinity grid maps — the AutoGrid half of the AutoDock-GPU
// reimplementation (Sec. 5.1.1).
//
// A receptor is compiled once into per-probe-type affinity fields plus an
// electrostatic potential field over a cubic box around the binding site.
// Scoring a ligand pose then costs one trilinear interpolation per atom,
// which is what makes per-ligand docking ~1e-4 node-hours (Tab. 2).

#include <array>
#include <cstdint>
#include <vector>

#include "impeccable/common/checks.hpp"
#include "impeccable/common/vec3.hpp"

namespace impeccable::dock {

/// Probe types the maps are computed for. Ligand atoms are binned into these
/// classes (element + aromaticity + H-bonding role), mirroring the AutoDock
/// atom-typing scheme at coarse granularity.
enum class ProbeType : std::uint8_t {
  Carbon,      ///< aliphatic C
  Aromatic,    ///< aromatic C
  Donor,       ///< N/O/S with attached H
  Acceptor,    ///< N/O/F lone-pair acceptor without H
  Sulfur,      ///< S, P
  Halogen,     ///< F, Cl, Br, I
  Count,
};

inline constexpr int kProbeCount = static_cast<int>(ProbeType::Count);

/// Value + spatial gradient of a field at a point.
struct FieldSample {
  double value = 0.0;
  common::Vec3 gradient;
};

/// A scalar field on a regular grid with trilinear interpolation.
/// Queries outside the box are clamped to the boundary with a steep
/// quadratic penalty added, which keeps GA individuals inside the box.
class GridField {
 public:
  GridField(common::Vec3 origin, double spacing, int nx, int ny, int nz);

  /// Node access; bounds-checked in IMPECCABLE_CHECKS builds (IMP_DCHECK,
  /// free otherwise — this sits inside map-building triple loops).
  double& at(int ix, int iy, int iz) {
    check_node(ix, iy, iz);
    return data_[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix];
  }
  double at(int ix, int iy, int iz) const {
    check_node(ix, iy, iz);
    return data_[(static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix];
  }

  /// Trilinearly interpolated value (and gradient) at a world-space point.
  FieldSample sample(const common::Vec3& p) const;

  /// Fused two-field sampling. `other` must share this field's geometry
  /// (origin, spacing, dimensions) — true for all maps of one AffinityGrid.
  /// The cell index, trilinear weights, and clamp/wall penalty are computed
  /// once and applied to both outputs, matching two independent sample()
  /// calls bit for bit at half the index math and lattice-walk cost.
  void sample_pair(const common::Vec3& p, const GridField& other,
                   FieldSample& self_out, FieldSample& other_out) const;

  /// Value-only fused sampling for energy-only scoring paths: identical
  /// values to sample_pair (the value never depends on gradient math).
  void sample_pair_values(const common::Vec3& p, const GridField& other,
                          double& self_value, double& other_value) const;

  /// Batched value-only fused sampling: one atom across `lanes` pose lanes.
  /// Inputs are lane arrays (xs[l], ys[l], zs[l] is lane l's query point);
  /// outputs likewise. The cell locate and trilinear weights are computed
  /// in a vectorizable lane loop with branchless clamping that reproduces
  /// sample_pair_values bit for bit per lane. `lanes` ≤ kMaxBatchPoses
  /// (see score_batch.hpp); geometry constraint on `other` as sample_pair.
  void sample_pair_values_batch(const double* xs, const double* ys,
                                const double* zs, int lanes,
                                const GridField& other, double* self_vals,
                                double* other_vals) const;

  /// Batched fused sampling with gradients: values plus the spatial
  /// gradient planes of both fields, matching sample_pair bit for bit per
  /// lane. Output pointers are lane arrays of length `lanes`.
  void sample_pair_batch(const double* xs, const double* ys, const double* zs,
                         int lanes, const GridField& other, double* self_vals,
                         double* self_gx, double* self_gy, double* self_gz,
                         double* other_vals, double* other_gx,
                         double* other_gy, double* other_gz) const;

  common::Vec3 origin() const { return origin_; }
  double spacing() const { return spacing_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  /// World-space coordinates of a grid node.
  common::Vec3 node(int ix, int iy, int iz) const;

  /// Out-of-box penalty strength (kcal/mol per Å², applied quadratically).
  static constexpr double kWallStiffness = 50.0;

 private:
  /// Resolved interpolation cell for a query point: lattice corner, weights,
  /// and the accumulated out-of-box wall penalty (value + gradient).
  struct Cell {
    std::size_t base = 0;  ///< flat index of the (ix, iy, iz) corner
    double fx = 0.0, fy = 0.0, fz = 0.0;
    double wall = 0.0;
    common::Vec3 wall_gradient;
  };

  Cell locate(const common::Vec3& p) const;
  double tri_value(const Cell& c) const;
  void tri_sample(const Cell& c, FieldSample& out) const;

  void check_node(int ix, int iy, int iz) const {
    IMP_DCHECK(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_ && iz >= 0 &&
                   iz < nz_,
               "grid node (%d, %d, %d) out of bounds for %dx%dx%d field", ix,
               iy, iz, nx_, ny_, nz_);
  }

  common::Vec3 origin_;
  double spacing_;
  int nx_, ny_, nz_;
  std::vector<double> data_;
};

/// The full set of maps for one receptor.
struct AffinityGrid {
  std::vector<GridField> probe_maps;  ///< one per ProbeType
  GridField electrostatic;            ///< potential in kcal/(mol·e)
  common::Vec3 pocket_center;

  AffinityGrid(common::Vec3 origin, double spacing, int nx, int ny, int nz);

  const GridField& map(ProbeType t) const {
    return probe_maps[static_cast<std::size_t>(t)];
  }
  GridField& map(ProbeType t) { return probe_maps[static_cast<std::size_t>(t)]; }
};

}  // namespace impeccable::dock
