#include "impeccable/dock/search.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "impeccable/dock/score_batch.hpp"
#include "impeccable/obs/recorder.hpp"

namespace impeccable::dock {

using common::Rng;
using common::Vec3;

namespace {

/// Wrap an angle into (-pi, pi].
double wrap_angle(double a) {
  while (a > 3.14159265358979323846) a -= 2 * 3.14159265358979323846;
  while (a <= -3.14159265358979323846) a += 2 * 3.14159265358979323846;
  return a;
}

/// Apply a Solis–Wets deviation (bias + random) to a pose, writing into a
/// reusable candidate (the torsion vector's capacity is reused — no
/// allocation in the search loop).
void perturb_into(const Pose& base, const std::vector<double>& dev, Pose& p) {
  p = base;
  p.translation += Vec3{dev[0], dev[1], dev[2]};
  p.rotate_by(Vec3{dev[3], dev[4], dev[5]});
  for (std::size_t t = 0; t < p.torsions.size(); ++t)
    p.torsions[t] = wrap_angle(p.torsions[t] + dev[6 + t]);
}

/// One ADADELTA update: flatten the pose gradient into gene space, advance
/// the squared-gradient/squared-update EMAs, and apply the step to `cur`.
/// Shared by the scalar and lock-step batched local searches and kept out of
/// line deliberately — inlining it into differently-shaped loops would let
/// the compiler contract the FMAs differently per call site and break the
/// bitwise batched-vs-scalar trajectory identity under -march=native.
[[gnu::noinline]] void adadelta_step(const PoseGradient& grad,
                                     const AdadeltaOptions& opts, std::size_t n,
                                     double* g, double* dx, double* eg2,
                                     double* ex2, Pose& cur) {
  g[0] = grad.translation.x * opts.trans_scale;
  g[1] = grad.translation.y * opts.trans_scale;
  g[2] = grad.translation.z * opts.trans_scale;
  g[3] = grad.torque.x * opts.rot_scale;
  g[4] = grad.torque.y * opts.rot_scale;
  g[5] = grad.torque.z * opts.rot_scale;
  for (std::size_t t = 0; t < cur.torsions.size(); ++t)
    g[6 + t] = grad.torsions[t] * opts.torsion_scale;

  for (std::size_t k = 0; k < n; ++k) {
    eg2[k] = opts.rho * eg2[k] + (1 - opts.rho) * g[k] * g[k];
    dx[k] = -std::sqrt(ex2[k] + opts.epsilon) /
            std::sqrt(eg2[k] + opts.epsilon) * g[k];
    ex2[k] = opts.rho * ex2[k] + (1 - opts.rho) * dx[k] * dx[k];
  }

  cur.translation += Vec3{dx[0], dx[1], dx[2]};
  cur.rotate_by(Vec3{dx[3], dx[4], dx[5]});
  for (std::size_t t = 0; t < cur.torsions.size(); ++t)
    cur.torsions[t] = wrap_angle(cur.torsions[t] + dx[6 + t]);
}

}  // namespace

LocalSearchResult solis_wets(const ScoringFunction& score, const Pose& start,
                             Rng& rng, const SolisWetsOptions& opts,
                             ScorerScratch* scratch) {
  ScorerScratch local;
  ScorerScratch& arena = scratch ? *scratch : local;
  const std::size_t n = 6 + start.torsions.size();
  std::vector<double> bias(n, 0.0);
  double step = opts.initial_step;
  int successes = 0, failures = 0;

  LocalSearchResult out;
  out.pose = start;
  out.energy = score.evaluate(start, arena);

  // Per-gene scale: translations in Å, rotation/torsions in radians (roughly
  // half the translational scale works well for drug-sized ligands).
  auto gene_scale = [&](std::size_t g) { return g < 3 ? 1.0 : 0.5; };

  std::vector<double> dev(n);
  Pose cand = start;
  for (int it = 0; it < opts.max_iterations; ++it) {
    if (step < opts.min_step) break;
    for (std::size_t g = 0; g < n; ++g)
      dev[g] = bias[g] + rng.gauss(0.0, step * gene_scale(g));

    perturb_into(out.pose, dev, cand);
    double e = score.evaluate(cand, arena);
    ++out.iterations;
    if (e < out.energy) {
      out.pose = cand;
      out.energy = e;
      for (std::size_t g = 0; g < n; ++g) bias[g] = 0.2 * bias[g] + 0.4 * dev[g];
      ++successes;
      failures = 0;
    } else {
      // Try the opposite direction before counting a failure.
      for (auto& d : dev) d = -d;
      perturb_into(out.pose, dev, cand);
      e = score.evaluate(cand, arena);
      ++out.iterations;
      if (e < out.energy) {
        out.pose = cand;
        out.energy = e;
        for (std::size_t g = 0; g < n; ++g) bias[g] = 0.2 * bias[g] + 0.4 * dev[g];
        ++successes;
        failures = 0;
      } else {
        for (auto& b : bias) b *= 0.5;
        ++failures;
        successes = 0;
      }
    }
    if (successes >= opts.success_streak) {
      step *= opts.step_expansion;
      successes = 0;
    } else if (failures >= opts.failure_streak) {
      step *= opts.step_contraction;
      failures = 0;
    }
  }
  return out;
}

LocalSearchResult adadelta(const ScoringFunction& score, const Pose& start,
                           const AdadeltaOptions& opts, ScorerScratch* scratch) {
  ScorerScratch local;
  ScorerScratch& arena = scratch ? *scratch : local;
  const std::size_t n = 6 + start.torsions.size();
  std::vector<double> eg2(n, 0.0);  // EMA of squared gradients
  std::vector<double> ex2(n, 0.0);  // EMA of squared updates

  LocalSearchResult out;
  out.pose = start;
  PoseGradient grad;
  out.energy = score.evaluate_with_gradient(out.pose, arena, grad);

  Pose cur = out.pose;
  double cur_energy = out.energy;

  std::vector<double> g(n), dx(n);
  for (int it = 0; it < opts.max_iterations; ++it) {
    adadelta_step(grad, opts, n, g.data(), dx.data(), eg2.data(), ex2.data(),
                  cur);
    cur_energy = score.evaluate_with_gradient(cur, arena, grad);
    ++out.iterations;
    if (cur_energy < out.energy) {
      out.energy = cur_energy;
      out.pose = cur;
    }
  }
  return out;
}

namespace {

Pose crossover(const Pose& a, const Pose& b, Rng& rng) {
  Pose child = a;
  if (rng.bernoulli(0.5)) child.translation = b.translation;
  if (rng.bernoulli(0.5)) {
    child.qw = b.qw; child.qx = b.qx; child.qy = b.qy; child.qz = b.qz;
  }
  for (std::size_t t = 0; t < child.torsions.size(); ++t)
    if (rng.bernoulli(0.5)) child.torsions[t] = b.torsions[t];
  return child;
}

void mutate(Pose& p, Rng& rng, const LgaOptions& opts) {
  if (rng.bernoulli(opts.mutation_rate))
    p.translation += Vec3{rng.gauss(0, opts.mutation_trans_sigma),
                          rng.gauss(0, opts.mutation_trans_sigma),
                          rng.gauss(0, opts.mutation_trans_sigma)};
  if (rng.bernoulli(opts.mutation_rate))
    p.rotate_by(Vec3{rng.gauss(0, opts.mutation_rot_sigma),
                     rng.gauss(0, opts.mutation_rot_sigma),
                     rng.gauss(0, opts.mutation_rot_sigma)});
  for (auto& t : p.torsions)
    if (rng.bernoulli(opts.mutation_rate))
      t = wrap_angle(t + rng.gauss(0, opts.mutation_torsion_sigma));
}

struct Individual {
  Pose pose;
  double energy;
};

/// Per-lane state for lock-step batched ADADELTA, reused across generations
/// so steady-state local search stays allocation-free once warmed.
struct AdaBatchState {
  std::array<Pose, kMaxBatchPoses> cur, best;
  std::array<PoseGradient, kMaxBatchPoses> grads;
  std::vector<double> eg2, ex2, g, dx;  ///< lane-strided, count × genes
  std::array<double, kMaxBatchPoses> energies{}, best_e{};
};

/// Runs ADADELTA on `count` children simultaneously: per-lane gene updates
/// go through the same adadelta_step() the scalar path uses, and every gradient comes
/// from one evaluate_with_gradient_batch call per iteration, so each lane's
/// final pose and energy are bit-identical to a scalar adadelta() run from
/// the same start. ADADELTA draws no RNG and has no data-dependent exit, so
/// children can be deferred and run lock-step without touching the
/// generation's RNG stream (Solis–Wets cannot — it stays inline).
void adadelta_lockstep(const ScoringFunction& score,
                       std::vector<Individual>& inds, const int* idx,
                       int count, const AdadeltaOptions& opts,
                       BatchScratch& bscratch, AdaBatchState& st) {
  const std::size_t n =
      6 + inds[static_cast<std::size_t>(idx[0])].pose.torsions.size();
  const std::size_t lanes = static_cast<std::size_t>(count);
  st.eg2.assign(lanes * n, 0.0);
  st.ex2.assign(lanes * n, 0.0);
  st.g.resize(lanes * n);
  st.dx.resize(lanes * n);

  PoseBatch pb;
  for (int l = 0; l < count; ++l) {
    st.cur[static_cast<std::size_t>(l)] =
        inds[static_cast<std::size_t>(idx[l])].pose;
    pb.push(st.cur[static_cast<std::size_t>(l)]);
  }
  score.evaluate_with_gradient_batch(pb, bscratch, st.energies.data(),
                                     st.grads.data());
  for (int l = 0; l < count; ++l) {
    st.best[static_cast<std::size_t>(l)] = st.cur[static_cast<std::size_t>(l)];
    st.best_e[static_cast<std::size_t>(l)] =
        st.energies[static_cast<std::size_t>(l)];
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    for (std::size_t l = 0; l < lanes; ++l)
      adadelta_step(st.grads[l], opts, n, st.g.data() + l * n,
                    st.dx.data() + l * n, st.eg2.data() + l * n,
                    st.ex2.data() + l * n, st.cur[l]);

    pb.clear();
    for (std::size_t l = 0; l < lanes; ++l) pb.push(st.cur[l]);
    score.evaluate_with_gradient_batch(pb, bscratch, st.energies.data(),
                                       st.grads.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      if (st.energies[l] < st.best_e[l]) {
        st.best_e[l] = st.energies[l];
        st.best[l] = st.cur[l];
      }
    }
  }

  // Lamarckian write-back, as the inline path does with ls.pose/ls.energy.
  for (int l = 0; l < count; ++l) {
    inds[static_cast<std::size_t>(idx[l])].pose =
        st.best[static_cast<std::size_t>(l)];
    inds[static_cast<std::size_t>(idx[l])].energy =
        st.best_e[static_cast<std::size_t>(l)];
  }
}

}  // namespace

LgaResult run_lga(const ScoringFunction& score, Rng& rng, const LgaOptions& opts) {
  const std::uint64_t evals_before = score.evaluations();
  const Vec3 center = score.grid().pocket_center;

  // One scratch arena per search-run: every scoring call below builds
  // coordinates (and forces) into it, so steady-state evaluation never
  // touches the heap. The batch arena is its SoA counterpart.
  ScorerScratch scratch;
  BatchScratch bscratch;
  const int B = std::clamp(opts.score_batch, 0, kMaxBatchPoses);
  const bool batched = B >= 2;

  // Batch observability: handles resolved once per run (registration locks),
  // then updated with relaxed atomic ops on the hot path.
  obs::Recorder* rec = obs::global();
  obs::Counter* batch_poses =
      rec ? &rec->metrics().counter("dock.batch.poses") : nullptr;
  obs::Histogram* batch_fill =
      rec ? &rec->metrics().histogram("dock.batch.fill",
                                      obs::HistogramSpec{1.0, 32.0, 10})
          : nullptr;

  std::vector<Individual> pop;
  pop.reserve(static_cast<std::size_t>(opts.population));

  // Deferred plain scoring: poses queue in `pb` (pointers into a reserved
  // population vector, so they stay stable) and flush through the batched
  // kernel when full; the remainder falls through to the scalar kernel.
  // Deferral never reorders RNG draws — evaluate() consumes none.
  PoseBatch pb;
  std::array<int, kMaxBatchPoses> pending{};
  std::array<double, kMaxBatchPoses> energies{};

  auto flush_batched = [&](std::vector<Individual>& vec) {
    if (pb.empty()) return;
    obs::Span span(obs::cat::kDock, "lga.batch");
    score.evaluate_batch(pb, bscratch, energies.data());
    for (int l = 0; l < pb.count; ++l)
      vec[static_cast<std::size_t>(pending[static_cast<std::size_t>(l)])]
          .energy = energies[static_cast<std::size_t>(l)];
    if (batch_poses) {
      batch_poses->add(static_cast<std::uint64_t>(pb.count));
      batch_fill->observe(static_cast<double>(pb.count));
      span.arg("poses", static_cast<double>(pb.count));
    }
    pb.clear();
  };
  auto flush_scalar = [&](std::vector<Individual>& vec) {
    if (pb.empty()) return;
    obs::Span span(obs::cat::kDock, "lga.scalar");
    for (int l = 0; l < pb.count; ++l)
      vec[static_cast<std::size_t>(pending[static_cast<std::size_t>(l)])]
          .energy = score.evaluate(
          *pb.poses[static_cast<std::size_t>(l)], scratch);
    if (span.active()) span.arg("poses", static_cast<double>(pb.count));
    pb.clear();
  };
  auto defer = [&](std::vector<Individual>& vec, int index) {
    pending[static_cast<std::size_t>(pb.count)] = index;
    pb.push(vec[static_cast<std::size_t>(index)].pose);
    if (pb.count == B) flush_batched(vec);
  };

  for (int i = 0; i < opts.population; ++i) {
    Individual ind;
    ind.pose = score.ligand().random_pose(center, opts.init_radius, rng);
    ind.energy = 0.0;
    pop.push_back(std::move(ind));
    if (batched)
      defer(pop, i);
    else
      pop.back().energy = score.evaluate(pop.back().pose, scratch);
  }
  flush_scalar(pop);

  auto by_energy = [](const Individual& a, const Individual& b) {
    return a.energy < b.energy;
  };

  // Lock-step ADADELTA lanes (see adadelta_lockstep); state reused across
  // generations.
  AdaBatchState ada_state;
  std::array<int, kMaxBatchPoses> ada_pending{};
  int ada_count = 0;
  auto flush_ada = [&](std::vector<Individual>& vec) {
    if (ada_count == 0) return;
    if (ada_count > 1) {
      obs::Span span(obs::cat::kDock, "lga.ls_batch");
      adadelta_lockstep(score, vec, ada_pending.data(), ada_count, opts.ad,
                        bscratch, ada_state);
      if (batch_poses) {
        const std::uint64_t evals = static_cast<std::uint64_t>(ada_count) *
                                    (1 + static_cast<std::uint64_t>(std::max(
                                             0, opts.ad.max_iterations)));
        batch_poses->add(evals);
        batch_fill->observe(static_cast<double>(ada_count));
        span.arg("poses", static_cast<double>(ada_count));
      }
    } else {
      // Remainder lane falls through to the scalar local search.
      obs::Span span(obs::cat::kDock, "lga.ls_scalar");
      Individual& ind = vec[static_cast<std::size_t>(ada_pending[0])];
      const LocalSearchResult ls = adadelta(score, ind.pose, opts.ad, &scratch);
      ind.pose = ls.pose;
      ind.energy = ls.energy;
    }
    ada_count = 0;
  };

  for (int gen = 0; gen < opts.generations; ++gen) {
    std::sort(pop.begin(), pop.end(), by_energy);

    std::vector<Individual> next;
    next.reserve(pop.size());
    for (int e = 0; e < opts.elitism && e < static_cast<int>(pop.size()); ++e)
      next.push_back(pop[static_cast<std::size_t>(e)]);

    // Binary tournament selection.
    auto select = [&]() -> const Individual& {
      const auto& a = pop[rng.index(pop.size())];
      const auto& b = pop[rng.index(pop.size())];
      return a.energy < b.energy ? a : b;
    };

    while (next.size() < pop.size()) {
      const int index = static_cast<int>(next.size());
      Individual child;
      if (rng.bernoulli(opts.crossover_rate)) {
        child.pose = crossover(select().pose, select().pose, rng);
        child.pose.normalize_quaternion();
      } else {
        child.pose = select().pose;
      }
      mutate(child.pose, rng, opts);

      if (opts.local_search != LocalSearchMethod::None &&
          rng.bernoulli(opts.local_search_rate)) {
        if (batched && opts.local_search == LocalSearchMethod::Adadelta) {
          // Defer to a lock-step lane batch; ADADELTA consumes no RNG, so
          // running it after the generation's genotypes are drawn leaves
          // the stream untouched.
          next.push_back(std::move(child));
          ada_pending[static_cast<std::size_t>(ada_count++)] = index;
          if (ada_count == B) flush_ada(next);
        } else {
          // Lamarckian step: the improved genotype is inherited.
          LocalSearchResult ls =
              opts.local_search == LocalSearchMethod::SolisWets
                  ? solis_wets(score, child.pose, rng, opts.sw, &scratch)
                  : adadelta(score, child.pose, opts.ad, &scratch);
          child.pose = ls.pose;
          child.energy = ls.energy;
          next.push_back(std::move(child));
        }
      } else {
        if (batched) {
          next.push_back(std::move(child));
          defer(next, index);
        } else {
          child.energy = score.evaluate(child.pose, scratch);
          next.push_back(std::move(child));
        }
      }
    }
    flush_scalar(next);
    flush_ada(next);
    pop = std::move(next);
  }

  const auto best = std::min_element(pop.begin(), pop.end(), by_energy);
  LgaResult out;
  out.best_pose = best->pose;
  out.best_energy = best->energy;
  score.ligand().build_coords(out.best_pose, out.best_coords);
  out.evaluations = score.evaluations() - evals_before;
  return out;
}

}  // namespace impeccable::dock
