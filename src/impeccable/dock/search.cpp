#include "impeccable/dock/search.hpp"

#include <algorithm>
#include <cmath>

namespace impeccable::dock {

using common::Rng;
using common::Vec3;

namespace {

/// Wrap an angle into (-pi, pi].
double wrap_angle(double a) {
  while (a > 3.14159265358979323846) a -= 2 * 3.14159265358979323846;
  while (a <= -3.14159265358979323846) a += 2 * 3.14159265358979323846;
  return a;
}

/// Apply a Solis–Wets deviation (bias + random) to a pose, writing into a
/// reusable candidate (the torsion vector's capacity is reused — no
/// allocation in the search loop).
void perturb_into(const Pose& base, const std::vector<double>& dev, Pose& p) {
  p = base;
  p.translation += Vec3{dev[0], dev[1], dev[2]};
  p.rotate_by(Vec3{dev[3], dev[4], dev[5]});
  for (std::size_t t = 0; t < p.torsions.size(); ++t)
    p.torsions[t] = wrap_angle(p.torsions[t] + dev[6 + t]);
}

}  // namespace

LocalSearchResult solis_wets(const ScoringFunction& score, const Pose& start,
                             Rng& rng, const SolisWetsOptions& opts,
                             ScorerScratch* scratch) {
  ScorerScratch local;
  ScorerScratch& arena = scratch ? *scratch : local;
  const std::size_t n = 6 + start.torsions.size();
  std::vector<double> bias(n, 0.0);
  double step = opts.initial_step;
  int successes = 0, failures = 0;

  LocalSearchResult out;
  out.pose = start;
  out.energy = score.evaluate(start, arena);

  // Per-gene scale: translations in Å, rotation/torsions in radians (roughly
  // half the translational scale works well for drug-sized ligands).
  auto gene_scale = [&](std::size_t g) { return g < 3 ? 1.0 : 0.5; };

  std::vector<double> dev(n);
  Pose cand = start;
  for (int it = 0; it < opts.max_iterations; ++it) {
    if (step < opts.min_step) break;
    for (std::size_t g = 0; g < n; ++g)
      dev[g] = bias[g] + rng.gauss(0.0, step * gene_scale(g));

    perturb_into(out.pose, dev, cand);
    double e = score.evaluate(cand, arena);
    ++out.iterations;
    if (e < out.energy) {
      out.pose = cand;
      out.energy = e;
      for (std::size_t g = 0; g < n; ++g) bias[g] = 0.2 * bias[g] + 0.4 * dev[g];
      ++successes;
      failures = 0;
    } else {
      // Try the opposite direction before counting a failure.
      for (auto& d : dev) d = -d;
      perturb_into(out.pose, dev, cand);
      e = score.evaluate(cand, arena);
      ++out.iterations;
      if (e < out.energy) {
        out.pose = cand;
        out.energy = e;
        for (std::size_t g = 0; g < n; ++g) bias[g] = 0.2 * bias[g] + 0.4 * dev[g];
        ++successes;
        failures = 0;
      } else {
        for (auto& b : bias) b *= 0.5;
        ++failures;
        successes = 0;
      }
    }
    if (successes >= opts.success_streak) {
      step *= opts.step_expansion;
      successes = 0;
    } else if (failures >= opts.failure_streak) {
      step *= opts.step_contraction;
      failures = 0;
    }
  }
  return out;
}

LocalSearchResult adadelta(const ScoringFunction& score, const Pose& start,
                           const AdadeltaOptions& opts, ScorerScratch* scratch) {
  ScorerScratch local;
  ScorerScratch& arena = scratch ? *scratch : local;
  const std::size_t n = 6 + start.torsions.size();
  std::vector<double> eg2(n, 0.0);  // EMA of squared gradients
  std::vector<double> ex2(n, 0.0);  // EMA of squared updates

  LocalSearchResult out;
  out.pose = start;
  PoseGradient grad;
  out.energy = score.evaluate_with_gradient(out.pose, arena, grad);

  Pose cur = out.pose;
  double cur_energy = out.energy;

  std::vector<double> g(n), dx(n);
  for (int it = 0; it < opts.max_iterations; ++it) {
    // Flatten the gradient into gene space with per-block scales.
    g[0] = grad.translation.x * opts.trans_scale;
    g[1] = grad.translation.y * opts.trans_scale;
    g[2] = grad.translation.z * opts.trans_scale;
    g[3] = grad.torque.x * opts.rot_scale;
    g[4] = grad.torque.y * opts.rot_scale;
    g[5] = grad.torque.z * opts.rot_scale;
    for (std::size_t t = 0; t < cur.torsions.size(); ++t)
      g[6 + t] = grad.torsions[t] * opts.torsion_scale;

    for (std::size_t k = 0; k < n; ++k) {
      eg2[k] = opts.rho * eg2[k] + (1 - opts.rho) * g[k] * g[k];
      dx[k] = -std::sqrt(ex2[k] + opts.epsilon) / std::sqrt(eg2[k] + opts.epsilon) * g[k];
      ex2[k] = opts.rho * ex2[k] + (1 - opts.rho) * dx[k] * dx[k];
    }

    cur.translation += Vec3{dx[0], dx[1], dx[2]};
    cur.rotate_by(Vec3{dx[3], dx[4], dx[5]});
    for (std::size_t t = 0; t < cur.torsions.size(); ++t)
      cur.torsions[t] = wrap_angle(cur.torsions[t] + dx[6 + t]);

    cur_energy = score.evaluate_with_gradient(cur, arena, grad);
    ++out.iterations;
    if (cur_energy < out.energy) {
      out.energy = cur_energy;
      out.pose = cur;
    }
  }
  return out;
}

namespace {

Pose crossover(const Pose& a, const Pose& b, Rng& rng) {
  Pose child = a;
  if (rng.bernoulli(0.5)) child.translation = b.translation;
  if (rng.bernoulli(0.5)) {
    child.qw = b.qw; child.qx = b.qx; child.qy = b.qy; child.qz = b.qz;
  }
  for (std::size_t t = 0; t < child.torsions.size(); ++t)
    if (rng.bernoulli(0.5)) child.torsions[t] = b.torsions[t];
  return child;
}

void mutate(Pose& p, Rng& rng, const LgaOptions& opts) {
  if (rng.bernoulli(opts.mutation_rate))
    p.translation += Vec3{rng.gauss(0, opts.mutation_trans_sigma),
                          rng.gauss(0, opts.mutation_trans_sigma),
                          rng.gauss(0, opts.mutation_trans_sigma)};
  if (rng.bernoulli(opts.mutation_rate))
    p.rotate_by(Vec3{rng.gauss(0, opts.mutation_rot_sigma),
                     rng.gauss(0, opts.mutation_rot_sigma),
                     rng.gauss(0, opts.mutation_rot_sigma)});
  for (auto& t : p.torsions)
    if (rng.bernoulli(opts.mutation_rate))
      t = wrap_angle(t + rng.gauss(0, opts.mutation_torsion_sigma));
}

}  // namespace

LgaResult run_lga(const ScoringFunction& score, Rng& rng, const LgaOptions& opts) {
  const std::uint64_t evals_before = score.evaluations();
  const Vec3 center = score.grid().pocket_center;

  // One scratch arena per search-run: every scoring call below builds
  // coordinates (and forces) into it, so steady-state evaluation never
  // touches the heap.
  ScorerScratch scratch;

  struct Individual {
    Pose pose;
    double energy;
  };
  std::vector<Individual> pop;
  pop.reserve(static_cast<std::size_t>(opts.population));
  for (int i = 0; i < opts.population; ++i) {
    Individual ind;
    ind.pose = score.ligand().random_pose(center, opts.init_radius, rng);
    ind.energy = score.evaluate(ind.pose, scratch);
    pop.push_back(std::move(ind));
  }

  auto by_energy = [](const Individual& a, const Individual& b) {
    return a.energy < b.energy;
  };

  for (int gen = 0; gen < opts.generations; ++gen) {
    std::sort(pop.begin(), pop.end(), by_energy);

    std::vector<Individual> next;
    next.reserve(pop.size());
    for (int e = 0; e < opts.elitism && e < static_cast<int>(pop.size()); ++e)
      next.push_back(pop[static_cast<std::size_t>(e)]);

    // Binary tournament selection.
    auto select = [&]() -> const Individual& {
      const auto& a = pop[rng.index(pop.size())];
      const auto& b = pop[rng.index(pop.size())];
      return a.energy < b.energy ? a : b;
    };

    while (next.size() < pop.size()) {
      Individual child;
      if (rng.bernoulli(opts.crossover_rate)) {
        child.pose = crossover(select().pose, select().pose, rng);
        child.pose.normalize_quaternion();
      } else {
        child.pose = select().pose;
      }
      mutate(child.pose, rng, opts);

      if (opts.local_search != LocalSearchMethod::None &&
          rng.bernoulli(opts.local_search_rate)) {
        // Lamarckian step: the improved genotype is inherited.
        LocalSearchResult ls =
            opts.local_search == LocalSearchMethod::SolisWets
                ? solis_wets(score, child.pose, rng, opts.sw, &scratch)
                : adadelta(score, child.pose, opts.ad, &scratch);
        child.pose = ls.pose;
        child.energy = ls.energy;
      } else {
        child.energy = score.evaluate(child.pose, scratch);
      }
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }

  const auto best = std::min_element(pop.begin(), pop.end(), by_energy);
  LgaResult out;
  out.best_pose = best->pose;
  out.best_energy = best->energy;
  score.ligand().build_coords(out.best_pose, out.best_coords);
  out.evaluations = score.evaluations() - evals_before;
  return out;
}

}  // namespace impeccable::dock
