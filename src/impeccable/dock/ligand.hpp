#pragma once
// Torsional-tree ligand model — the AutoDock degrees of freedom.
//
// A docking pose is (translation, rigid rotation, one angle per rotatable
// bond). The ligand is built from the molecular graph + its 3D embedding:
// rotatable bonds are detected, a root rigid fragment is chosen, and each
// torsion records the atoms distal to it (its "moving set").

#include <cstdint>
#include <vector>

#include "impeccable/chem/molecule.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/common/vec3.hpp"
#include "impeccable/dock/grid.hpp"

namespace impeccable::dock {

struct LigandAtom {
  ProbeType probe = ProbeType::Carbon;
  double charge = 0.0;     ///< Gasteiger-like partial charge, e
  double vdw_radius = 1.7; ///< for the intramolecular term
  double well_depth = 0.15;
};

struct Torsion {
  int axis_a = -1;  ///< proximal atom of the rotatable bond
  int axis_b = -1;  ///< distal atom of the rotatable bond
  std::vector<int> moving;  ///< atoms rotated by this torsion (distal side)
};

/// One intramolecular nonbonded pair with its LJ parameters precomputed at
/// ligand-build time, so the scoring inner loop does no sqrt or radius
/// arithmetic per evaluation.
struct NonbondedPair {
  std::int32_t i = 0, j = 0;
  double rij = 0.0;    ///< optimal distance, 0.9 * (vdw_i + vdw_j)
  double eps = 0.0;    ///< well depth, sqrt(well_i * well_j)
  double eps12 = 0.0;  ///< 12 * eps, the gradient prefactor
};

/// Pose genotype: the LGA individual.
struct Pose {
  common::Vec3 translation;  ///< of the ligand centroid
  /// Orientation quaternion (w, x, y, z), kept normalized.
  double qw = 1.0, qx = 0.0, qy = 0.0, qz = 0.0;
  std::vector<double> torsions;  ///< radians, one per rotatable bond

  void normalize_quaternion();
  /// Compose a small rotation `omega` (axis*angle vector) onto the pose.
  void rotate_by(const common::Vec3& omega);
};

/// Gradient of an energy with respect to the pose degrees of freedom.
struct PoseGradient {
  common::Vec3 translation;
  common::Vec3 torque;  ///< dE/d(rotation vector), world frame
  std::vector<double> torsions;
};

class Ligand {
 public:
  /// Build from a finalized molecule. 3D coordinates come from embed_3d with
  /// `conformer_seed`, so one molecule yields an ensemble of conformers.
  Ligand(const chem::Molecule& mol, std::uint64_t conformer_seed = 7);

  int atom_count() const { return static_cast<int>(atoms_.size()); }
  const std::vector<LigandAtom>& atoms() const { return atoms_; }
  const std::vector<Torsion>& torsions() const { return torsions_; }
  int torsion_count() const { return static_cast<int>(torsions_.size()); }
  const std::vector<common::Vec3>& reference_coords() const { return ref_coords_; }

  /// Intramolecular nonbonded pairs (atoms separated by >3 bonds or in
  /// different rigid groups), used by the internal-energy term.
  const std::vector<std::pair<int, int>>& nonbonded_pairs() const {
    return nb_pairs_;
  }

  /// The same pairs with LJ parameters (rij, eps, 12·eps) precomputed once
  /// at construction — the scorer's inner-loop table.
  const std::vector<NonbondedPair>& pair_table() const { return pair_table_; }

  /// Apply the pose: torsions in tree order, then rigid rotation about the
  /// reference-frame origin, then translation. Writes atom_count() coords.
  void build_coords(const Pose& pose, std::vector<common::Vec3>& out) const;

  /// Allocation-free core of build_coords: writes atom_count() coordinates
  /// into `out`, which must point at atom_count() writable slots (a scratch
  /// arena in the scoring hot path).
  void build_coords_into(const Pose& pose, common::Vec3* out) const;

  /// Batched build for the SoA scoring path: builds coordinates for `count`
  /// poses directly in lane-planar arrays xs/ys/zs of stride `lanes`
  /// (xs[a * lanes + l] is atom a of pose l) — the torsion stage and the
  /// rigid placement both run as lane loops over the planes. Padding lanes
  /// (count..lanes) are zero-filled so downstream SIMD kernels read defined
  /// values. Every expression mirrors build_coords_into term for term and
  /// ligand.cpp is compiled with FP contraction off, so lane coordinates
  /// are bit-identical to the scalar path. Allocation-free.
  void build_coords_batch(const Pose* const* poses, int count, int lanes,
                          double* xs, double* ys, double* zs) const;

  /// An identity pose centered at `center`.
  Pose identity_pose(const common::Vec3& center) const;

  /// A random pose with translation inside a sphere around `center`.
  Pose random_pose(const common::Vec3& center, double radius,
                   common::Rng& rng) const;

 private:
  std::vector<LigandAtom> atoms_;
  std::vector<Torsion> torsions_;
  std::vector<common::Vec3> ref_coords_;  ///< canonical conformation, centered
  std::vector<std::pair<int, int>> nb_pairs_;
  std::vector<NonbondedPair> pair_table_;
};

/// Map a heavy atom of the molecule onto a probe type.
ProbeType probe_type_for(const chem::Molecule& mol, int atom);

/// Simple electronegativity-equalization partial charges (Gasteiger-like,
/// three damped iterations). Returns one charge per heavy atom; attached
/// hydrogens are folded into their heavy atom (united-atom convention).
std::vector<double> partial_charges(const chem::Molecule& mol);

}  // namespace impeccable::dock
