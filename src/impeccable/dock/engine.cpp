#include "impeccable/dock/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "impeccable/common/kabsch.hpp"
#include "impeccable/obs/recorder.hpp"

namespace impeccable::dock {

DockResult dock(const AffinityGrid& grid, const chem::Molecule& mol,
                const std::string& ligand_id, const DockOptions& opts) {
  obs::Span span(obs::cat::kDock, ligand_id);
  const Ligand ligand(mol, opts.conformer_seed);

  struct RunOutput {
    LgaResult lga;
  };
  std::vector<RunOutput> runs(static_cast<std::size_t>(std::max(0, opts.runs)));

  // Spawn the per-run RNG streams serially first — base.spawn() order is the
  // determinism anchor — then execute the runs in any order. Each run gets
  // its own ScoringFunction because run_lga reports per-run evaluation counts
  // as a delta of the scorer's counter; run_lga owns the run's ScorerScratch
  // arena, so steady-state scoring inside a run never allocates.
  common::Rng base(opts.seed ^ std::hash<std::string>{}(ligand_id));
  std::vector<common::Rng> run_rngs;
  run_rngs.reserve(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) run_rngs.push_back(base.spawn());

  auto run_one = [&](std::size_t r) {
    const ScoringFunction score(grid, ligand);
    runs[r].lga = run_lga(score, run_rngs[r], opts.lga);
  };
  if (opts.pool && opts.pool->size() > 1 && runs.size() > 1) {
    opts.pool->parallel_for(0, runs.size(), run_one, 1);
  } else {
    for (std::size_t r = 0; r < runs.size(); ++r) run_one(r);
  }

  // Cluster final poses by heavy-atom RMSD (docking frame is fixed by the
  // receptor, so no superposition — raw RMSD, as AutoDock does).
  std::sort(runs.begin(), runs.end(), [](const RunOutput& a, const RunOutput& b) {
    return a.lga.best_energy < b.lga.best_energy;
  });

  DockResult out;
  out.ligand_id = ligand_id;
  out.torsion_count = ligand.torsion_count();

  // Each cluster's representative coordinates are cached when the cluster is
  // created (a run's best_coords are already built), so membership tests cost
  // one RMSD instead of a coordinate rebuild per comparison.
  std::vector<const std::vector<common::Vec3>*> cluster_coords;
  for (const auto& run : runs) {
    bool placed = false;
    for (std::size_t c = 0; c < out.clusters.size(); ++c) {
      if (common::rmsd_raw(*cluster_coords[c], run.lga.best_coords) <
          opts.cluster_rmsd) {
        ++out.clusters[c].members;
        placed = true;
        break;
      }
    }
    if (!placed) {
      PoseCluster cl;
      cl.best_energy = run.lga.best_energy;
      cl.members = 1;
      cl.representative = run.lga.best_pose;
      out.clusters.push_back(std::move(cl));
      cluster_coords.push_back(&run.lga.best_coords);
    }
    out.evaluations += run.lga.evaluations;
  }

  const auto& best = runs.front().lga;
  out.best_score = best.best_energy;
  out.best_pose = best.best_pose;
  out.best_coords = best.best_coords;

  if (span.active()) {
    span.arg("evaluations", static_cast<double>(out.evaluations));
    span.arg("best_score", out.best_score);
    span.arg("clusters", static_cast<double>(out.clusters.size()));
    obs::Recorder* rec = obs::global();
    rec->metrics().counter("dock.ligands").add(1);
    rec->metrics().counter("dock.evaluations").add(out.evaluations);
    const double start = span.start_time();
    rec->metrics().histogram("dock.ligand_seconds").observe(rec->now() - start);
  }
  return out;
}

DockResult dock_conformer_ensemble(const AffinityGrid& grid,
                                   const chem::Molecule& mol,
                                   const std::string& ligand_id,
                                   int conformers, const DockOptions& opts,
                                   std::vector<double>* conformer_scores) {
  if (conformers < 1) conformers = 1;
  if (conformer_scores) conformer_scores->clear();

  DockResult best;
  bool first = true;
  std::uint64_t total_evals = 0;
  for (int c = 0; c < conformers; ++c) {
    DockOptions copts = opts;
    copts.conformer_seed = opts.conformer_seed + 101 * static_cast<std::uint64_t>(c);
    DockResult res = dock(grid, mol, ligand_id, copts);
    total_evals += res.evaluations;
    if (conformer_scores) conformer_scores->push_back(res.best_score);
    if (first || res.best_score < best.best_score) {
      best = std::move(res);
      first = false;
    }
  }
  best.evaluations = total_evals;
  return best;
}

DockResult dock_multi_structure(
    const std::vector<std::shared_ptr<const AffinityGrid>>& grids,
    const chem::Molecule& mol, const std::string& ligand_id,
    const DockOptions& opts, int* best_structure) {
  if (grids.empty())
    throw std::invalid_argument("dock_multi_structure: no grids");
  DockResult best;
  bool first = true;
  std::uint64_t total_evals = 0;
  for (std::size_t g = 0; g < grids.size(); ++g) {
    DockOptions sopts = opts;
    sopts.seed = opts.seed ^ (0x9e37 * (g + 1));
    DockResult res = dock(*grids[g], mol, ligand_id, sopts);
    total_evals += res.evaluations;
    if (first || res.best_score < best.best_score) {
      best = std::move(res);
      first = false;
      if (best_structure) *best_structure = static_cast<int>(g);
    }
  }
  best.evaluations = total_evals;
  return best;
}

std::uint64_t flops_per_evaluation(int atoms, int nb_pairs) {
  // Per atom: one fused cell locate feeding trilinear interpolation with
  // gradient on two fields (~90 flops each of arithmetic — fusing halves the
  // index math, not the interpolation arithmetic itself) plus bookkeeping;
  // per intramolecular pair: distance, powers and LJ combination from the
  // precomputed table (~40 flops). Coordinates build: rotation and torsion
  // transforms, ~60 flops/atom.
  return static_cast<std::uint64_t>(atoms) * (2 * 90 + 60) +
         static_cast<std::uint64_t>(nb_pairs) * 40;
}

}  // namespace impeccable::dock
