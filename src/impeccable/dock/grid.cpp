#include "impeccable/dock/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace impeccable::dock {

using common::Vec3;

GridField::GridField(Vec3 origin, double spacing, int nx, int ny, int nz)
    : origin_(origin), spacing_(spacing), nx_(nx), ny_(ny), nz_(nz),
      data_(static_cast<std::size_t>(nx) * ny * nz, 0.0) {
  if (nx < 2 || ny < 2 || nz < 2)
    throw std::invalid_argument("GridField: need at least 2 nodes per axis");
  if (spacing <= 0.0)
    throw std::invalid_argument("GridField: spacing must be positive");
}

Vec3 GridField::node(int ix, int iy, int iz) const {
  return origin_ + Vec3{ix * spacing_, iy * spacing_, iz * spacing_};
}

GridField::Cell GridField::locate(const Vec3& p) const {
  // Fractional grid coordinates.
  double gx = (p.x - origin_.x) / spacing_;
  double gy = (p.y - origin_.y) / spacing_;
  double gz = (p.z - origin_.z) / spacing_;

  // Clamp into the valid interpolation domain, accumulating a quadratic
  // wall penalty (with gradient) for the clamped distance.
  Cell c;
  auto clamp_axis = [&](double& g, int n, double* grad_component) {
    const double max_g = static_cast<double>(n) - 1.0 - 1e-9;
    if (g < 0.0) {
      const double d = -g * spacing_;
      c.wall += kWallStiffness * d * d;
      *grad_component += -2.0 * kWallStiffness * d;  // pushes back inside (+axis)
      g = 0.0;
    } else if (g > max_g) {
      const double d = (g - max_g) * spacing_;
      c.wall += kWallStiffness * d * d;
      *grad_component += 2.0 * kWallStiffness * d;
      g = max_g;
    }
  };
  clamp_axis(gx, nx_, &c.wall_gradient.x);
  clamp_axis(gy, ny_, &c.wall_gradient.y);
  clamp_axis(gz, nz_, &c.wall_gradient.z);

  const int ix = std::min(nx_ - 2, static_cast<int>(gx));
  const int iy = std::min(ny_ - 2, static_cast<int>(gy));
  const int iz = std::min(nz_ - 2, static_cast<int>(gz));
  c.base = (static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix;
  c.fx = gx - ix;
  c.fy = gy - iy;
  c.fz = gz - iz;
  return c;
}

double GridField::tri_value(const Cell& c) const {
  const double* b = data_.data() + c.base;
  const std::size_t sy = static_cast<std::size_t>(nx_);
  const std::size_t sz = static_cast<std::size_t>(nx_) * ny_;
  const double c000 = b[0], c100 = b[1];
  const double c010 = b[sy], c110 = b[sy + 1];
  const double c001 = b[sz], c101 = b[sz + 1];
  const double c011 = b[sz + sy], c111 = b[sz + sy + 1];

  const double fx = c.fx, fy = c.fy, fz = c.fz;
  const double c00 = c000 * (1 - fx) + c100 * fx;
  const double c10 = c010 * (1 - fx) + c110 * fx;
  const double c01 = c001 * (1 - fx) + c101 * fx;
  const double c11 = c011 * (1 - fx) + c111 * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

void GridField::tri_sample(const Cell& c, FieldSample& out) const {
  const double* b = data_.data() + c.base;
  const std::size_t sy = static_cast<std::size_t>(nx_);
  const std::size_t sz = static_cast<std::size_t>(nx_) * ny_;
  const double c000 = b[0], c100 = b[1];
  const double c010 = b[sy], c110 = b[sy + 1];
  const double c001 = b[sz], c101 = b[sz + 1];
  const double c011 = b[sz + sy], c111 = b[sz + sy + 1];

  const double fx = c.fx, fy = c.fy, fz = c.fz;
  const double c00 = c000 * (1 - fx) + c100 * fx;
  const double c10 = c010 * (1 - fx) + c110 * fx;
  const double c01 = c001 * (1 - fx) + c101 * fx;
  const double c11 = c011 * (1 - fx) + c111 * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  out.value += c0 * (1 - fz) + c1 * fz;

  // Analytic gradient of the trilinear form (chain rule through spacing).
  const double dx = ((c100 - c000) * (1 - fy) + (c110 - c010) * fy) * (1 - fz) +
                    ((c101 - c001) * (1 - fy) + (c111 - c011) * fy) * fz;
  const double dy = ((c010 - c000) * (1 - fx) + (c110 - c100) * fx) * (1 - fz) +
                    ((c011 - c001) * (1 - fx) + (c111 - c101) * fx) * fz;
  const double dz = (c01 - c00) * (1 - fy) + (c11 - c10) * fy;
  out.gradient.x += dx / spacing_;
  out.gradient.y += dy / spacing_;
  out.gradient.z += dz / spacing_;
}

FieldSample GridField::sample(const Vec3& p) const {
  const Cell c = locate(p);
  FieldSample out;
  out.value = c.wall;
  out.gradient = c.wall_gradient;
  tri_sample(c, out);
  return out;
}

void GridField::sample_pair(const Vec3& p, const GridField& other,
                            FieldSample& self_out, FieldSample& other_out) const {
  assert(other.nx_ == nx_ && other.ny_ == ny_ && other.nz_ == nz_ &&
         other.spacing_ == spacing_);
  const Cell c = locate(p);
  self_out.value = c.wall;
  self_out.gradient = c.wall_gradient;
  tri_sample(c, self_out);
  other_out.value = c.wall;
  other_out.gradient = c.wall_gradient;
  other.tri_sample(c, other_out);
}

void GridField::sample_pair_values(const Vec3& p, const GridField& other,
                                   double& self_value, double& other_value) const {
  assert(other.nx_ == nx_ && other.ny_ == ny_ && other.nz_ == nz_ &&
         other.spacing_ == spacing_);
  const Cell c = locate(p);
  self_value = c.wall + tri_value(c);
  other_value = c.wall + other.tri_value(c);
}

AffinityGrid::AffinityGrid(Vec3 origin, double spacing, int nx, int ny, int nz)
    : electrostatic(origin, spacing, nx, ny, nz) {
  probe_maps.reserve(kProbeCount);
  for (int t = 0; t < kProbeCount; ++t)
    probe_maps.emplace_back(origin, spacing, nx, ny, nz);
  pocket_center = origin + Vec3{(nx - 1) * spacing / 2.0,
                                (ny - 1) * spacing / 2.0,
                                (nz - 1) * spacing / 2.0};
}

}  // namespace impeccable::dock
