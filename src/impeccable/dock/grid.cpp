#include "impeccable/dock/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace impeccable::dock {

using common::Vec3;

GridField::GridField(Vec3 origin, double spacing, int nx, int ny, int nz)
    : origin_(origin), spacing_(spacing), nx_(nx), ny_(ny), nz_(nz),
      data_(static_cast<std::size_t>(nx) * ny * nz, 0.0) {
  if (nx < 2 || ny < 2 || nz < 2)
    throw std::invalid_argument("GridField: need at least 2 nodes per axis");
  if (spacing <= 0.0)
    throw std::invalid_argument("GridField: spacing must be positive");
}

Vec3 GridField::node(int ix, int iy, int iz) const {
  return origin_ + Vec3{ix * spacing_, iy * spacing_, iz * spacing_};
}

GridField::Cell GridField::locate(const Vec3& p) const {
  // Fractional grid coordinates.
  double gx = (p.x - origin_.x) / spacing_;
  double gy = (p.y - origin_.y) / spacing_;
  double gz = (p.z - origin_.z) / spacing_;

  // Clamp into the valid interpolation domain, accumulating a quadratic
  // wall penalty (with gradient) for the clamped distance.
  Cell c;
  auto clamp_axis = [&](double& g, int n, double* grad_component) {
    const double max_g = static_cast<double>(n) - 1.0 - 1e-9;
    if (g < 0.0) {
      const double d = -g * spacing_;
      c.wall += kWallStiffness * d * d;
      *grad_component += -2.0 * kWallStiffness * d;  // pushes back inside (+axis)
      g = 0.0;
    } else if (g > max_g) {
      const double d = (g - max_g) * spacing_;
      c.wall += kWallStiffness * d * d;
      *grad_component += 2.0 * kWallStiffness * d;
      g = max_g;
    }
  };
  clamp_axis(gx, nx_, &c.wall_gradient.x);
  clamp_axis(gy, ny_, &c.wall_gradient.y);
  clamp_axis(gz, nz_, &c.wall_gradient.z);

  const int ix = std::min(nx_ - 2, static_cast<int>(gx));
  const int iy = std::min(ny_ - 2, static_cast<int>(gy));
  const int iz = std::min(nz_ - 2, static_cast<int>(gz));
  c.base = (static_cast<std::size_t>(iz) * ny_ + iy) * nx_ + ix;
  c.fx = gx - ix;
  c.fy = gy - iy;
  c.fz = gz - iz;
  return c;
}

double GridField::tri_value(const Cell& c) const {
  const double* b = data_.data() + c.base;
  const std::size_t sy = static_cast<std::size_t>(nx_);
  const std::size_t sz = static_cast<std::size_t>(nx_) * ny_;
  const double c000 = b[0], c100 = b[1];
  const double c010 = b[sy], c110 = b[sy + 1];
  const double c001 = b[sz], c101 = b[sz + 1];
  const double c011 = b[sz + sy], c111 = b[sz + sy + 1];

  const double fx = c.fx, fy = c.fy, fz = c.fz;
  const double c00 = c000 * (1 - fx) + c100 * fx;
  const double c10 = c010 * (1 - fx) + c110 * fx;
  const double c01 = c001 * (1 - fx) + c101 * fx;
  const double c11 = c011 * (1 - fx) + c111 * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

void GridField::tri_sample(const Cell& c, FieldSample& out) const {
  const double* b = data_.data() + c.base;
  const std::size_t sy = static_cast<std::size_t>(nx_);
  const std::size_t sz = static_cast<std::size_t>(nx_) * ny_;
  const double c000 = b[0], c100 = b[1];
  const double c010 = b[sy], c110 = b[sy + 1];
  const double c001 = b[sz], c101 = b[sz + 1];
  const double c011 = b[sz + sy], c111 = b[sz + sy + 1];

  const double fx = c.fx, fy = c.fy, fz = c.fz;
  const double c00 = c000 * (1 - fx) + c100 * fx;
  const double c10 = c010 * (1 - fx) + c110 * fx;
  const double c01 = c001 * (1 - fx) + c101 * fx;
  const double c11 = c011 * (1 - fx) + c111 * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  out.value += c0 * (1 - fz) + c1 * fz;

  // Analytic gradient of the trilinear form (chain rule through spacing).
  const double dx = ((c100 - c000) * (1 - fy) + (c110 - c010) * fy) * (1 - fz) +
                    ((c101 - c001) * (1 - fy) + (c111 - c011) * fy) * fz;
  const double dy = ((c010 - c000) * (1 - fx) + (c110 - c100) * fx) * (1 - fz) +
                    ((c011 - c001) * (1 - fx) + (c111 - c101) * fx) * fz;
  const double dz = (c01 - c00) * (1 - fy) + (c11 - c10) * fy;
  out.gradient.x += dx / spacing_;
  out.gradient.y += dy / spacing_;
  out.gradient.z += dz / spacing_;
}

FieldSample GridField::sample(const Vec3& p) const {
  const Cell c = locate(p);
  FieldSample out;
  out.value = c.wall;
  out.gradient = c.wall_gradient;
  tri_sample(c, out);
  return out;
}

void GridField::sample_pair(const Vec3& p, const GridField& other,
                            FieldSample& self_out, FieldSample& other_out) const {
  assert(other.nx_ == nx_ && other.ny_ == ny_ && other.nz_ == nz_ &&
         other.spacing_ == spacing_);
  const Cell c = locate(p);
  self_out.value = c.wall;
  self_out.gradient = c.wall_gradient;
  tri_sample(c, self_out);
  other_out.value = c.wall;
  other_out.gradient = c.wall_gradient;
  other.tri_sample(c, other_out);
}

void GridField::sample_pair_values(const Vec3& p, const GridField& other,
                                   double& self_value, double& other_value) const {
  assert(other.nx_ == nx_ && other.ny_ == ny_ && other.nz_ == nz_ &&
         other.spacing_ == spacing_);
  const Cell c = locate(p);
  self_value = c.wall + tri_value(c);
  other_value = c.wall + other.tri_value(c);
}

// ------------------------------------------------------- batched sampling
//
// The lane kernels below reproduce locate() / tri_value() / tri_sample()
// expression for expression — with the clamp branches rewritten as
// max()-based forms whose inactive terms are exact zeros — so every lane
// is bit-identical to the corresponding scalar sample. Loops over lanes
// carry no cross-lane dependency and are annotated for SIMD codegen.

namespace {

/// Hard lane bound mirrored from score_batch.hpp (grid.hpp stays lean).
constexpr int kMaxLanes = 16;

/// Stack-resident per-lane cell state: resolved corner, weights, wall.
struct BatchCells {
  std::size_t base[kMaxLanes];
  double fx[kMaxLanes], fy[kMaxLanes], fz[kMaxLanes];
  double wall[kMaxLanes];
  double wgx[kMaxLanes], wgy[kMaxLanes], wgz[kMaxLanes];
};

void locate_lanes(const Vec3& origin, double spacing, int nx, int ny, int nz,
                  const double* xs, const double* ys, const double* zs,
                  int lanes, BatchCells& c) {
  const double max_gx = static_cast<double>(nx) - 1.0 - 1e-9;
  const double max_gy = static_cast<double>(ny) - 1.0 - 1e-9;
  const double max_gz = static_cast<double>(nz) - 1.0 - 1e-9;
  constexpr double kW = GridField::kWallStiffness;
#pragma omp simd
  for (int l = 0; l < lanes; ++l) {
    const double gx = (xs[l] - origin.x) / spacing;
    const double gy = (ys[l] - origin.y) / spacing;
    const double gz = (zs[l] - origin.z) / spacing;

    // Branchless clamp: for each axis at most one of the low/high excess
    // distances is nonzero; the other contributes an exact 0.0 to the wall
    // sum and gradient, matching the scalar if/else-if bit for bit.
    const double dlox = std::max(-gx, 0.0) * spacing;
    const double dhix = std::max(gx - max_gx, 0.0) * spacing;
    const double dloy = std::max(-gy, 0.0) * spacing;
    const double dhiy = std::max(gy - max_gy, 0.0) * spacing;
    const double dloz = std::max(-gz, 0.0) * spacing;
    const double dhiz = std::max(gz - max_gz, 0.0) * spacing;

    double wall = 0.0;
    wall += kW * dlox * dlox;
    wall += kW * dhix * dhix;
    wall += kW * dloy * dloy;
    wall += kW * dhiy * dhiy;
    wall += kW * dloz * dloz;
    wall += kW * dhiz * dhiz;
    c.wall[l] = wall;
    c.wgx[l] = -2.0 * kW * dlox + 2.0 * kW * dhix;
    c.wgy[l] = -2.0 * kW * dloy + 2.0 * kW * dhiy;
    c.wgz[l] = -2.0 * kW * dloz + 2.0 * kW * dhiz;

    const double cgx = std::min(std::max(gx, 0.0), max_gx);
    const double cgy = std::min(std::max(gy, 0.0), max_gy);
    const double cgz = std::min(std::max(gz, 0.0), max_gz);
    const int ix = std::min(nx - 2, static_cast<int>(cgx));
    const int iy = std::min(ny - 2, static_cast<int>(cgy));
    const int iz = std::min(nz - 2, static_cast<int>(cgz));
    c.base[l] = (static_cast<std::size_t>(iz) * static_cast<std::size_t>(ny) +
                 static_cast<std::size_t>(iy)) *
                    static_cast<std::size_t>(nx) +
                static_cast<std::size_t>(ix);
    c.fx[l] = cgx - ix;
    c.fy[l] = cgy - iy;
    c.fz[l] = cgz - iz;
  }
}

/// Corner values of one field for every lane, gathered into lane planes.
struct BatchCorners {
  double c000[kMaxLanes], c100[kMaxLanes], c010[kMaxLanes], c110[kMaxLanes];
  double c001[kMaxLanes], c101[kMaxLanes], c011[kMaxLanes], c111[kMaxLanes];
};

void gather_lanes(const double* data, int nx, int ny, const BatchCells& c,
                  int lanes, BatchCorners& k) {
  const std::size_t sy = static_cast<std::size_t>(nx);
  const std::size_t sz = static_cast<std::size_t>(nx) * ny;
  for (int l = 0; l < lanes; ++l) {
    const double* b = data + c.base[l];
    k.c000[l] = b[0];
    k.c100[l] = b[1];
    k.c010[l] = b[sy];
    k.c110[l] = b[sy + 1];
    k.c001[l] = b[sz];
    k.c101[l] = b[sz + 1];
    k.c011[l] = b[sz + sy];
    k.c111[l] = b[sz + sy + 1];
  }
}

void tri_values_lanes(const BatchCells& c, const BatchCorners& k, int lanes,
                      double* vals) {
#pragma omp simd
  for (int l = 0; l < lanes; ++l) {
    const double fx = c.fx[l], fy = c.fy[l], fz = c.fz[l];
    const double c00 = k.c000[l] * (1 - fx) + k.c100[l] * fx;
    const double c10 = k.c010[l] * (1 - fx) + k.c110[l] * fx;
    const double c01 = k.c001[l] * (1 - fx) + k.c101[l] * fx;
    const double c11 = k.c011[l] * (1 - fx) + k.c111[l] * fx;
    const double c0 = c00 * (1 - fy) + c10 * fy;
    const double c1 = c01 * (1 - fy) + c11 * fy;
    vals[l] = c.wall[l] + (c0 * (1 - fz) + c1 * fz);
  }
}

void tri_samples_lanes(const BatchCells& c, const BatchCorners& k,
                       double spacing, int lanes, double* vals, double* gx,
                       double* gy, double* gz) {
#pragma omp simd
  for (int l = 0; l < lanes; ++l) {
    const double fx = c.fx[l], fy = c.fy[l], fz = c.fz[l];
    const double c00 = k.c000[l] * (1 - fx) + k.c100[l] * fx;
    const double c10 = k.c010[l] * (1 - fx) + k.c110[l] * fx;
    const double c01 = k.c001[l] * (1 - fx) + k.c101[l] * fx;
    const double c11 = k.c011[l] * (1 - fx) + k.c111[l] * fx;
    const double c0 = c00 * (1 - fy) + c10 * fy;
    const double c1 = c01 * (1 - fy) + c11 * fy;
    vals[l] = c.wall[l] + (c0 * (1 - fz) + c1 * fz);

    const double dx =
        ((k.c100[l] - k.c000[l]) * (1 - fy) + (k.c110[l] - k.c010[l]) * fy) *
            (1 - fz) +
        ((k.c101[l] - k.c001[l]) * (1 - fy) + (k.c111[l] - k.c011[l]) * fy) *
            fz;
    const double dy =
        ((k.c010[l] - k.c000[l]) * (1 - fx) + (k.c110[l] - k.c100[l]) * fx) *
            (1 - fz) +
        ((k.c011[l] - k.c001[l]) * (1 - fx) + (k.c111[l] - k.c101[l]) * fx) *
            fz;
    const double dz = (c01 - c00) * (1 - fy) + (c11 - c10) * fy;
    gx[l] = c.wgx[l] + dx / spacing;
    gy[l] = c.wgy[l] + dy / spacing;
    gz[l] = c.wgz[l] + dz / spacing;
  }
}

}  // namespace

void GridField::sample_pair_values_batch(const double* xs, const double* ys,
                                         const double* zs, int lanes,
                                         const GridField& other,
                                         double* self_vals,
                                         double* other_vals) const {
  assert(other.nx_ == nx_ && other.ny_ == ny_ && other.nz_ == nz_ &&
         other.spacing_ == spacing_);
  assert(lanes > 0 && lanes <= kMaxLanes);
  BatchCells c;
  locate_lanes(origin_, spacing_, nx_, ny_, nz_, xs, ys, zs, lanes, c);
  BatchCorners k;
  gather_lanes(data_.data(), nx_, ny_, c, lanes, k);
  tri_values_lanes(c, k, lanes, self_vals);
  gather_lanes(other.data_.data(), nx_, ny_, c, lanes, k);
  tri_values_lanes(c, k, lanes, other_vals);
}

void GridField::sample_pair_batch(const double* xs, const double* ys,
                                  const double* zs, int lanes,
                                  const GridField& other, double* self_vals,
                                  double* self_gx, double* self_gy,
                                  double* self_gz, double* other_vals,
                                  double* other_gx, double* other_gy,
                                  double* other_gz) const {
  assert(other.nx_ == nx_ && other.ny_ == ny_ && other.nz_ == nz_ &&
         other.spacing_ == spacing_);
  assert(lanes > 0 && lanes <= kMaxLanes);
  BatchCells c;
  locate_lanes(origin_, spacing_, nx_, ny_, nz_, xs, ys, zs, lanes, c);
  BatchCorners k;
  gather_lanes(data_.data(), nx_, ny_, c, lanes, k);
  tri_samples_lanes(c, k, spacing_, lanes, self_vals, self_gx, self_gy,
                    self_gz);
  gather_lanes(other.data_.data(), nx_, ny_, c, lanes, k);
  tri_samples_lanes(c, k, spacing_, lanes, other_vals, other_gx, other_gy,
                    other_gz);
}

AffinityGrid::AffinityGrid(Vec3 origin, double spacing, int nx, int ny, int nz)
    : electrostatic(origin, spacing, nx, ny, nz) {
  probe_maps.reserve(kProbeCount);
  for (int t = 0; t < kProbeCount; ++t)
    probe_maps.emplace_back(origin, spacing, nx, ny, nz);
  pocket_center = origin + Vec3{(nx - 1) * spacing / 2.0,
                                (ny - 1) * spacing / 2.0,
                                (nz - 1) * spacing / 2.0};
}

}  // namespace impeccable::dock
