#include "impeccable/dock/receptor.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "impeccable/common/rng.hpp"

namespace impeccable::dock {

using common::Rng;
using common::Vec3;

Receptor Receptor::synthesize(const std::string& name, std::uint64_t seed,
                              const ReceptorOptions& opts) {
  Receptor r;
  r.name_ = name;
  r.seed_ = seed;
  r.pocket_center_ = {0, 0, 0};
  Rng rng(seed ^ 0x7ece970aULL);

  // Pocket wall: atoms on a sphere around the cavity with a mouth opening
  // towards +z (points with z/r > cos(mouth) are skipped), plus radial
  // jitter so the wall is rugged and the score landscape has local minima.
  const double mouth_cos = 0.55;
  int placed = 0;
  while (placed < opts.shell_atoms) {
    // Uniform direction on the sphere.
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double s = std::sqrt(std::max(0.0, 1.0 - z * z));
    const Vec3 dir{s * std::cos(phi), s * std::sin(phi), z};
    if (dir.z > mouth_cos) continue;  // leave the mouth open

    ReceptorAtom a;
    const double radius = opts.pocket_radius + rng.uniform(0.0, 2.5);
    a.position = dir * radius;

    // Character assignment: a contiguous hydrophobic patch near the pocket
    // floor, polar/charged residues elsewhere — gives receptors chemically
    // coherent sub-sites rather than uniform noise.
    const double u = rng.uniform();
    const bool floor_region = dir.z < -0.3;
    if (floor_region && u < opts.hydrophobic_fraction * 1.6) {
      a.hydrophobic = true;
      a.vdw_radius = 1.9;
      a.well_depth = 0.20;
    } else if (u < opts.donor_fraction) {
      a.hbond_donor = true;
      a.charge = rng.uniform(0.05, 0.25);
    } else if (u < opts.donor_fraction + opts.acceptor_fraction) {
      a.hbond_acceptor = true;
      a.charge = rng.uniform(-0.3, -0.1);
    } else if (u < opts.donor_fraction + opts.acceptor_fraction +
                       opts.charged_fraction) {
      a.charge = rng.bernoulli(0.5) ? 1.0 : -1.0;
      a.hbond_donor = a.charge > 0;
      a.hbond_acceptor = a.charge < 0;
    } else {
      a.hydrophobic = rng.bernoulli(0.5);
      a.charge = rng.uniform(-0.05, 0.05);
    }
    r.atoms_.push_back(a);
    ++placed;
  }
  return r;
}

namespace {

/// AutoDock-style pairwise well parameters for a probe against a receptor
/// atom. Returns {Rij (Å), epsij (kcal/mol), hbond_eligible}.
struct PairParams {
  double rij;
  double epsij;
  bool hbond;
};

PairParams pair_params(ProbeType probe, const ReceptorAtom& ra) {
  double rp, ep;
  bool donor = false, acceptor = false, hydrophobic_probe = false;
  switch (probe) {
    case ProbeType::Carbon:   rp = 2.00; ep = 0.15; hydrophobic_probe = true; break;
    case ProbeType::Aromatic: rp = 2.00; ep = 0.17; hydrophobic_probe = true; break;
    case ProbeType::Donor:    rp = 1.75; ep = 0.16; donor = true; break;
    case ProbeType::Acceptor: rp = 1.60; ep = 0.20; acceptor = true; break;
    case ProbeType::Sulfur:   rp = 2.00; ep = 0.20; hydrophobic_probe = true; break;
    case ProbeType::Halogen:  rp = 1.85; ep = 0.28; hydrophobic_probe = true; break;
    default:                  rp = 2.00; ep = 0.15; break;
  }
  PairParams p;
  p.rij = rp + ra.vdw_radius;
  p.epsij = std::sqrt(ep * ra.well_depth);
  // Hydrophobic complementarity: deepen wells between hydrophobic pairs.
  if (hydrophobic_probe && ra.hydrophobic) p.epsij *= 1.8;
  // H-bond: probe donor to receptor acceptor or vice versa.
  p.hbond = (donor && ra.hbond_acceptor) || (acceptor && ra.hbond_donor);
  return p;
}

/// Mehler–Solmajer-style distance-dependent dielectric, simplified.
double dielectric(double r) { return std::clamp(4.0 * r, 4.0, 80.0); }

}  // namespace

std::shared_ptr<const AffinityGrid> compute_grid(const Receptor& receptor,
                                                 const GridOptions& opts) {
  const int n = opts.nodes;
  const double half = (n - 1) * opts.spacing / 2.0;
  const Vec3 origin = receptor.pocket_center() - Vec3{half, half, half};
  auto grid = std::make_shared<AffinityGrid>(origin, opts.spacing, n, n, n);

  const double cutoff = 10.0;
  const double cutoff2 = cutoff * cutoff;

  for (int iz = 0; iz < n; ++iz) {
    for (int iy = 0; iy < n; ++iy) {
      for (int ix = 0; ix < n; ++ix) {
        const Vec3 p = grid->electrostatic.node(ix, iy, iz);
        double phi = 0.0;
        std::array<double, kProbeCount> e{};
        for (const auto& ra : receptor.atoms()) {
          const double d2 = common::distance2(p, ra.position);
          if (d2 > cutoff2) continue;
          const double r = std::max(0.3, std::sqrt(d2));
          phi += 332.0 * ra.charge / (dielectric(r) * r);
          for (int t = 0; t < kProbeCount; ++t) {
            const PairParams pp = pair_params(static_cast<ProbeType>(t), ra);
            const double rr = pp.rij / r;
            const double rr6 = rr * rr * rr * rr * rr * rr;
            // 12-6 Lennard-Jones in AutoDock's Rij/epsij form.
            double u = pp.epsij * (rr6 * rr6 - 2.0 * rr6);
            if (pp.hbond) {
              // 10-12 H-bond well, ~2 kcal/mol deep at optimal geometry.
              const double rr10 = rr6 * rr * rr * rr * rr;
              u += 2.0 * pp.epsij * (5.0 * rr6 * rr6 - 6.0 * rr10);
            }
            e[static_cast<std::size_t>(t)] += u;
          }
        }
        grid->electrostatic.at(ix, iy, iz) = std::clamp(phi, -opts.energy_cap,
                                                        opts.energy_cap);
        for (int t = 0; t < kProbeCount; ++t)
          grid->map(static_cast<ProbeType>(t)).at(ix, iy, iz) =
              std::min(e[static_cast<std::size_t>(t)], opts.energy_cap);
      }
    }
  }
  return grid;
}

}  // namespace impeccable::dock
