#pragma once
// Procedural receptor synthesis + grid-map compilation (the AutoGrid step).
//
// Substitution note (DESIGN.md): the paper docks against crystal structures
// of SARS-CoV-2 targets (3CLPro, PLPro, ADRP, NSP15; e.g. PDB 6W9C). Offline
// we synthesize receptors: pseudo-atoms arranged as a binding pocket with
// seeded hydrophobic / H-bonding / charged character. Different seeds play
// the role of different targets & crystal structures; docking-score
// landscapes keep the properties that matter downstream (funnels, ligand-
// dependent difficulty, chemically meaningful selectivity).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "impeccable/dock/grid.hpp"

namespace impeccable::dock {

/// One receptor pseudo-atom.
struct ReceptorAtom {
  common::Vec3 position;
  double vdw_radius = 1.7;
  double well_depth = 0.15;
  double charge = 0.0;
  bool hbond_donor = false;
  bool hbond_acceptor = false;
  bool hydrophobic = false;
};

struct ReceptorOptions {
  int shell_atoms = 220;       ///< atoms forming the pocket wall
  double pocket_radius = 7.0;  ///< Å, inner radius of the cavity
  double hydrophobic_fraction = 0.45;
  double donor_fraction = 0.18;
  double acceptor_fraction = 0.22;
  double charged_fraction = 0.10;
};

/// A synthetic protein binding site.
class Receptor {
 public:
  /// Deterministically synthesize a receptor ("target") from a seed.
  static Receptor synthesize(const std::string& name, std::uint64_t seed,
                             const ReceptorOptions& opts = {});

  const std::string& name() const { return name_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<ReceptorAtom>& atoms() const { return atoms_; }
  common::Vec3 pocket_center() const { return pocket_center_; }

 private:
  std::string name_;
  std::uint64_t seed_ = 0;
  std::vector<ReceptorAtom> atoms_;
  common::Vec3 pocket_center_;
};

struct GridOptions {
  double spacing = 0.5;  ///< Å
  int nodes = 33;        ///< per axis (box = (nodes-1)*spacing Å)
  double energy_cap = 1000.0;  ///< clamp for repulsive map values
};

/// Compile a receptor into affinity maps (the AutoGrid computation):
/// per-probe pairwise 12-6 vdW (+10-12 H-bond term for Donor/Acceptor
/// probes) and a distance-dependent-dielectric electrostatic map.
std::shared_ptr<const AffinityGrid> compute_grid(const Receptor& receptor,
                                                 const GridOptions& opts = {});

}  // namespace impeccable::dock
