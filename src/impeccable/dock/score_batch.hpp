#pragma once
// Multi-pose batched scoring — the AutoDock-GPU restructuring (LeGrand et
// al., arXiv 2007.03678) on CPU SIMD lanes: evaluate B poses of ONE ligand
// simultaneously over shared static data (grid maps, nonbonded pair table).
//
// Layout is structure-of-arrays: per-atom coordinate planes x/y/z with one
// slot per pose lane, stride padded to the vector width, so the trilinear
// grid sampling and the LJ pair sweep become vectorizable lane loops that
// load the pair table and grid cells once per batch instead of once per
// pose. Per-lane arithmetic replicates the scalar kernels expression for
// expression, so a batched score is bit-identical to the scalar score of
// the same pose (the golden suite and the LGA trajectory gate rely on it).

#include <array>
#include <cstdint>
#include <vector>

#include "impeccable/dock/score.hpp"

namespace impeccable::dock {

/// Hard upper bound on poses per batch (two AVX-512 registers of lanes).
inline constexpr int kMaxBatchPoses = 16;

/// Lane-stride quantum: batches are padded to a multiple of this so the
/// lane loops keep whole-vector trip counts (4 doubles = one AVX2 register).
inline constexpr int kBatchLaneStep = 4;

/// `count` padded up to the lane step (0 stays 0; capped at kMaxBatchPoses).
constexpr int padded_lane_count(int count) {
  const int p = (count + kBatchLaneStep - 1) / kBatchLaneStep * kBatchLaneStep;
  return p < kMaxBatchPoses ? p : kMaxBatchPoses;
}

/// A batch of poses of one ligand awaiting evaluation. Non-owning: the
/// poses must outlive the batch (in the LGA they live in the population
/// vector, which is reserved up front so pointers stay stable).
struct PoseBatch {
  std::array<const Pose*, kMaxBatchPoses> poses{};
  int count = 0;

  bool empty() const { return count == 0; }
  bool full() const { return count == kMaxBatchPoses; }
  void clear() { count = 0; }
  void push(const Pose& p) { poses[static_cast<std::size_t>(count++)] = &p; }
};

/// Structure-of-arrays scratch for batched evaluation. One per search-run,
/// like ScorerScratch; sized lazily on first use, after which batched
/// evaluations perform no heap allocation. Planes are indexed
/// [atom * lanes + lane]; padding lanes (count..lanes) hold zeros, which
/// every kernel tolerates (the grid clamps, the LJ distance floor holds).
struct BatchScratch {
  int atoms = 0;  ///< plane row count the buffers are sized for
  int lanes = 0;  ///< padded lane stride the buffers are sized for

  std::vector<double> x, y, z;     ///< coordinate planes, atoms × lanes
  std::vector<double> fx, fy, fz;  ///< force planes (gradient path only)
  std::vector<double> energy;      ///< per-lane accumulators, lanes
  std::vector<common::Vec3> aos;   ///< per-lane coord staging (gradient reduce)
  std::vector<common::Vec3> aos_f; ///< per-lane force staging (gradient reduce)

  /// Ensure capacity for `atom_count` × `lane_count`, zeroing the coordinate
  /// and energy planes (padding lanes must read as zero every batch).
  void reset(int atom_count, int lane_count);
  /// Zero the force planes (gradient batches only — energy batches skip it).
  void reset_forces();
};

}  // namespace impeccable::dock
