#include "impeccable/dock/score.hpp"

#include <algorithm>
#include <cmath>

namespace impeccable::dock {

using common::Vec3;

ScoringFunction::ScoringFunction(const AffinityGrid& grid, const Ligand& ligand)
    : grid_(grid), ligand_(ligand) {
  const auto& atoms = ligand.atoms();
  atom_fields_.reserve(atoms.size());
  charges_.reserve(atoms.size());
  for (const LigandAtom& a : atoms) {
    atom_fields_.push_back(&grid.map(a.probe));
    charges_.push_back(a.charge);
  }
}

double ScoringFunction::energy_only(const Vec3* coords, std::size_t n) const {
  double energy = 0.0;

  // Intermolecular: fused per-atom lookup of the probe map and the
  // electrostatic map (one cell locate, two trilinear reads).
  const GridField& ele = grid_.electrostatic;
  for (std::size_t i = 0; i < n; ++i) {
    double aff_v, ele_v;
    atom_fields_[i]->sample_pair_values(coords[i], ele, aff_v, ele_v);
    energy += aff_v + charges_[i] * ele_v;
  }

  // Intramolecular: softened 12-6 over the precomputed pair table.
  for (const NonbondedPair& p : ligand_.pair_table()) {
    const Vec3 d = coords[static_cast<std::size_t>(p.j)] -
                   coords[static_cast<std::size_t>(p.i)];
    const double dist = d.norm();
    const double r = std::max(0.8, dist);
    const double rr = p.rij / r;
    const double rr6 = rr * rr * rr * rr * rr * rr;
    const double u = p.eps * (rr6 * rr6 - 2.0 * rr6);
    energy += u < 100.0 ? u : 100.0;
  }
  return energy;
}

double ScoringFunction::energy_and_forces(const Vec3* coords, std::size_t n,
                                          Vec3* forces) const {
  double energy = 0.0;

  const GridField& ele = grid_.electrostatic;
  for (std::size_t i = 0; i < n; ++i) {
    FieldSample aff, es;
    atom_fields_[i]->sample_pair(coords[i], ele, aff, es);
    energy += aff.value + charges_[i] * es.value;
    forces[i] += aff.gradient + es.gradient * charges_[i];
  }

  for (const NonbondedPair& p : ligand_.pair_table()) {
    const std::size_t i = static_cast<std::size_t>(p.i);
    const std::size_t j = static_cast<std::size_t>(p.j);
    const Vec3 d = coords[j] - coords[i];
    const double dist = d.norm();
    const double r = std::max(0.8, dist);
    const double rr = p.rij / r;
    const double rr6 = rr * rr * rr * rr * rr * rr;
    const double u = p.eps * (rr6 * rr6 - 2.0 * rr6);
    // The energy is clamped at the r = 0.8 floor and the u = 100 cap; the
    // gradient must vanish on exactly that clamped set or force and energy
    // disagree at the boundary (finite-difference-tested at both edges).
    const bool u_clamped = !(u < 100.0);
    const bool r_clamped = !(dist > 0.8);
    energy += u_clamped ? 100.0 : u;
    if (!u_clamped && !r_clamped) {
      // dU/dr = eps * (-12 rr12 + 12 rr6) / r
      const double du_dr = p.eps12 * (rr6 - rr6 * rr6) / r;
      const Vec3 dir = d / r;
      forces[j] += dir * du_dr;
      forces[i] -= dir * du_dr;
    }
  }
  return energy;
}

double ScoringFunction::score_coords(const std::vector<Vec3>& coords,
                                     std::vector<Vec3>* forces) const {
  if (!forces) return energy_only(coords.data(), coords.size());
  forces->assign(coords.size(), Vec3{});
  return energy_and_forces(coords.data(), coords.size(), forces->data());
}

double ScoringFunction::score_coords(const std::vector<Vec3>& coords,
                                     ScorerScratch& scratch) const {
  scratch.forces.assign(coords.size(), Vec3{});
  return energy_and_forces(coords.data(), coords.size(), scratch.forces.data());
}

double ScoringFunction::evaluate(const Pose& pose, std::vector<Vec3>* coords) const {
  return evaluate(pose, scratch_, coords);
}

double ScoringFunction::evaluate(const Pose& pose, ScorerScratch& scratch,
                                 std::vector<Vec3>* coords) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Vec3>& c = coords ? *coords : scratch.coords;
  c.resize(ligand_.atoms().size());
  ligand_.build_coords_into(pose, c.data());
  return energy_only(c.data(), c.size());
}

double ScoringFunction::evaluate_with_gradient(const Pose& pose,
                                               PoseGradient& grad) const {
  return evaluate_with_gradient(pose, scratch_, grad);
}

double ScoringFunction::evaluate_with_gradient(const Pose& pose,
                                               ScorerScratch& scratch,
                                               PoseGradient& grad) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = ligand_.atoms().size();
  std::vector<Vec3>& coords = scratch.coords;
  coords.resize(n);
  ligand_.build_coords_into(pose, coords.data());
  std::vector<Vec3>& g = scratch.forces;
  g.assign(n, Vec3{});
  const double energy = energy_and_forces(coords.data(), n, g.data());
  reduce_pose_gradient(coords.data(), g.data(), n, pose, grad);
  return energy;
}

void ScoringFunction::reduce_pose_gradient(const Vec3* coords,
                                           const Vec3* forces, std::size_t n,
                                           const Pose& pose,
                                           PoseGradient& grad) const {
  grad.translation = Vec3{};
  grad.torque = Vec3{};
  grad.torsions.assign(ligand_.torsion_count(), 0.0);

  // Pose::rotate_by composes a world-frame rotation in front of the pose
  // quaternion, which pivots the rigid body about its translation point; the
  // torque must therefore be taken about pose.translation.
  for (std::size_t i = 0; i < n; ++i) {
    grad.translation += forces[i];
    grad.torque += (coords[i] - pose.translation).cross(forces[i]);
  }

  const auto& torsions = ligand_.torsions();
  for (std::size_t t = 0; t < torsions.size(); ++t) {
    const Vec3 pa = coords[static_cast<std::size_t>(torsions[t].axis_a)];
    const Vec3 pb = coords[static_cast<std::size_t>(torsions[t].axis_b)];
    const Vec3 axis = (pb - pa).normalized();
    Vec3 acc;
    for (int idx : torsions[t].moving)
      acc += (coords[static_cast<std::size_t>(idx)] - pb)
                 .cross(forces[static_cast<std::size_t>(idx)]);
    grad.torsions[t] = axis.dot(acc);
  }
}

}  // namespace impeccable::dock
