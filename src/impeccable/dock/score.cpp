#include "impeccable/dock/score.hpp"

#include <algorithm>
#include <cmath>

namespace impeccable::dock {

using common::Vec3;

ScoringFunction::ScoringFunction(const AffinityGrid& grid, const Ligand& ligand)
    : grid_(grid), ligand_(ligand) {}

double ScoringFunction::energy_and_forces(const std::vector<Vec3>& coords,
                                          std::vector<Vec3>* grads) const {
  double energy = 0.0;
  if (grads) grads->assign(coords.size(), Vec3{});

  // Intermolecular: per-atom grid lookups.
  const auto& atoms = ligand_.atoms();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const FieldSample aff = grid_.map(atoms[i].probe).sample(coords[i]);
    const FieldSample ele = grid_.electrostatic.sample(coords[i]);
    energy += aff.value + atoms[i].charge * ele.value;
    if (grads)
      (*grads)[i] += aff.gradient + ele.gradient * atoms[i].charge;
  }

  // Intramolecular: softened 12-6 between topologically distant pairs.
  for (const auto& [i, j] : ligand_.nonbonded_pairs()) {
    const Vec3 d = coords[static_cast<std::size_t>(j)] - coords[static_cast<std::size_t>(i)];
    const double r = std::max(0.8, d.norm());
    const double rij = 0.9 * (atoms[static_cast<std::size_t>(i)].vdw_radius +
                              atoms[static_cast<std::size_t>(j)].vdw_radius);
    const double eps = std::sqrt(atoms[static_cast<std::size_t>(i)].well_depth *
                                 atoms[static_cast<std::size_t>(j)].well_depth);
    const double rr = rij / r;
    const double rr6 = rr * rr * rr * rr * rr * rr;
    const double u = eps * (rr6 * rr6 - 2.0 * rr6);
    energy += std::min(u, 100.0);
    if (grads && u < 100.0 && d.norm() > 0.8) {
      // dU/dr = eps * (-12 rr12 + 12 rr6) / r
      const double du_dr = eps * 12.0 * (rr6 - rr6 * rr6) / r;
      const Vec3 dir = d / r;
      (*grads)[static_cast<std::size_t>(j)] += dir * du_dr;
      (*grads)[static_cast<std::size_t>(i)] -= dir * du_dr;
    }
  }
  return energy;
}

double ScoringFunction::evaluate(const Pose& pose, std::vector<Vec3>* coords) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Vec3> local;
  std::vector<Vec3>& c = coords ? *coords : local;
  ligand_.build_coords(pose, c);
  return energy_and_forces(c, nullptr);
}

double ScoringFunction::evaluate_with_gradient(const Pose& pose,
                                               PoseGradient& grad) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Vec3> coords;
  ligand_.build_coords(pose, coords);
  std::vector<Vec3> g;
  const double energy = energy_and_forces(coords, &g);

  grad.translation = Vec3{};
  grad.torque = Vec3{};
  grad.torsions.assign(ligand_.torsion_count(), 0.0);

  // Pose::rotate_by composes a world-frame rotation in front of the pose
  // quaternion, which pivots the rigid body about its translation point; the
  // torque must therefore be taken about pose.translation.
  for (std::size_t i = 0; i < coords.size(); ++i) {
    grad.translation += g[i];
    grad.torque += (coords[i] - pose.translation).cross(g[i]);
  }

  const auto& torsions = ligand_.torsions();
  for (std::size_t t = 0; t < torsions.size(); ++t) {
    const Vec3 pa = coords[static_cast<std::size_t>(torsions[t].axis_a)];
    const Vec3 pb = coords[static_cast<std::size_t>(torsions[t].axis_b)];
    const Vec3 axis = (pb - pa).normalized();
    Vec3 acc;
    for (int idx : torsions[t].moving)
      acc += (coords[static_cast<std::size_t>(idx)] - pb).cross(g[static_cast<std::size_t>(idx)]);
    grad.torsions[t] = axis.dot(acc);
  }
  return energy;
}

}  // namespace impeccable::dock
