#pragma once
// Pose-space search: the Lamarckian genetic algorithm with pluggable local
// search — legacy Solis–Wets and the gradient-based ADADELTA method
// (Sec. 5.1.1, AutoDock-GPU).

#include <cstdint>
#include <functional>
#include <vector>

#include "impeccable/dock/score.hpp"

namespace impeccable::dock {

enum class LocalSearchMethod { None, SolisWets, Adadelta };

struct LocalSearchResult {
  Pose pose;
  double energy = 0.0;
  int iterations = 0;
};

struct SolisWetsOptions {
  int max_iterations = 60;
  double initial_step = 0.5;      ///< Å for translation; scaled for angles
  double step_contraction = 0.5;
  double step_expansion = 2.0;
  int success_streak = 4;         ///< expansions after this many successes
  int failure_streak = 4;         ///< contractions after this many failures
  double min_step = 1e-3;
};

/// Solis–Wets adaptive random walk from `start`. A non-null `scratch` is the
/// arena used for coordinate builds (pass the search-run's arena to keep the
/// inner loop allocation-free); null falls back to the scorer's own arena.
LocalSearchResult solis_wets(const ScoringFunction& score, const Pose& start,
                             common::Rng& rng, const SolisWetsOptions& opts = {},
                             ScorerScratch* scratch = nullptr);

struct AdadeltaOptions {
  int max_iterations = 60;
  double rho = 0.8;      ///< decay of squared-gradient / squared-update EMAs
  double epsilon = 1e-2;
  double trans_scale = 1.0;   ///< relative step scale for translation genes
  double rot_scale = 0.5;     ///< for the rotation update (radians)
  double torsion_scale = 0.5; ///< for torsion genes (radians)
};

/// ADADELTA gradient descent in pose space from `start`. `scratch` as in
/// solis_wets.
LocalSearchResult adadelta(const ScoringFunction& score, const Pose& start,
                           const AdadeltaOptions& opts = {},
                           ScorerScratch* scratch = nullptr);

struct LgaOptions {
  int population = 50;
  int generations = 40;
  double crossover_rate = 0.8;
  double mutation_rate = 0.1;
  double mutation_trans_sigma = 1.0;   ///< Å
  double mutation_rot_sigma = 0.4;     ///< radians
  double mutation_torsion_sigma = 0.6; ///< radians
  int elitism = 2;
  double local_search_rate = 0.3;      ///< fraction receiving local search
  LocalSearchMethod local_search = LocalSearchMethod::Adadelta;
  SolisWetsOptions sw;
  AdadeltaOptions ad;
  double init_radius = 4.0;  ///< Å around pocket center for initial poses
  /// Poses scored together through the SoA batched kernels
  /// (score_batch.hpp): plain population scoring flushes in batches of this
  /// size, and ADADELTA local searches run lock-step across this many
  /// children. Remainders fall through to the scalar kernels. Trajectories
  /// are bit-identical at any setting (the lane kernels are exact), so this
  /// is purely a throughput knob. 0 or 1 disables batching.
  int score_batch = 8;
};

struct LgaResult {
  Pose best_pose;
  double best_energy = 0.0;
  std::vector<common::Vec3> best_coords;
  std::uint64_t evaluations = 0;  ///< scoring calls consumed by this run
};

/// One Lamarckian GA run (corresponds to one AutoDock "run"). Local-search
/// improvements are written back into the genome (the Lamarckian step).
LgaResult run_lga(const ScoringFunction& score, common::Rng& rng,
                  const LgaOptions& opts = {});

}  // namespace impeccable::dock
