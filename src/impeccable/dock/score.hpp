#pragma once
// Pose scoring — intermolecular grid term + intramolecular ligand term,
// with analytic gradients in pose space for the ADADELTA local search
// (Sec. 5.1.1: "a new local-search method based on gradients of the scoring
// function").

#include <atomic>
#include <cstdint>
#include <vector>

#include "impeccable/dock/grid.hpp"
#include "impeccable/dock/ligand.hpp"

namespace impeccable::dock {

/// Scores poses of one ligand against one receptor grid.
/// Thread-compatible: one instance per worker; the evaluation counter is the
/// per-instance work-unit count used for flop accounting (Sec. 7.2).
class ScoringFunction {
 public:
  ScoringFunction(const AffinityGrid& grid, const Ligand& ligand);

  /// Total energy (kcal/mol-ish). If `coords` is non-null the built atom
  /// coordinates are written there (avoids a second build for callers that
  /// need them).
  double evaluate(const Pose& pose, std::vector<common::Vec3>* coords = nullptr) const;

  /// Energy and its gradient with respect to pose degrees of freedom.
  /// Torque is the derivative with respect to an infinitesimal world-frame
  /// rotation about the ligand centroid; torsion entries follow the pose's
  /// torsion order.
  double evaluate_with_gradient(const Pose& pose, PoseGradient& grad) const;

  /// Number of evaluate* calls since construction (work units).
  std::uint64_t evaluations() const { return evals_; }

  const Ligand& ligand() const { return ligand_; }
  const AffinityGrid& grid() const { return grid_; }

 private:
  /// Per-atom energies and forces at explicit coordinates.
  double energy_and_forces(const std::vector<common::Vec3>& coords,
                           std::vector<common::Vec3>* forces) const;

  const AffinityGrid& grid_;
  const Ligand& ligand_;
  mutable std::atomic<std::uint64_t> evals_{0};
};

}  // namespace impeccable::dock
