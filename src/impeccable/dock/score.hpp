#pragma once
// Pose scoring — intermolecular grid term + intramolecular ligand term,
// with analytic gradients in pose space for the ADADELTA local search
// (Sec. 5.1.1: "a new local-search method based on gradients of the scoring
// function").
//
// The evaluation kernel is allocation-free in steady state: coordinates,
// per-atom forces and torsion accumulators live in a ScorerScratch arena
// (owned per search-run, or the scorer's own fallback arena), grid lookups
// are fused across the probe-affinity and electrostatic maps, and the LJ
// pair parameters come from the ligand's precomputed table.

#include <atomic>
#include <cstdint>
#include <vector>

#include "impeccable/dock/grid.hpp"
#include "impeccable/dock/ligand.hpp"

namespace impeccable::dock {

struct PoseBatch;     // score_batch.hpp
struct BatchScratch;  // score_batch.hpp

/// Reusable scratch arena for the scoring hot loop. One per search-run (LGA
/// run, local-search invocation); sized lazily on first use, then steady-state
/// evaluations perform no heap allocation.
struct ScorerScratch {
  std::vector<common::Vec3> coords;  ///< built atom coordinates
  std::vector<common::Vec3> forces;  ///< per-atom Cartesian energy gradients
};

/// Scores poses of one ligand against one receptor grid.
/// Thread-compatible: one instance per worker — the evaluation counter is the
/// per-instance work-unit count used for flop accounting (Sec. 7.2), and the
/// fallback scratch arena is per-instance mutable state.
class ScoringFunction {
 public:
  ScoringFunction(const AffinityGrid& grid, const Ligand& ligand);

  /// Total energy (kcal/mol-ish). If `coords` is non-null the built atom
  /// coordinates are written there (avoids a second build for callers that
  /// need them).
  double evaluate(const Pose& pose, std::vector<common::Vec3>* coords = nullptr) const;

  /// Same, but building coordinates in an explicit caller-owned arena.
  double evaluate(const Pose& pose, ScorerScratch& scratch,
                  std::vector<common::Vec3>* coords = nullptr) const;

  /// Energy and its gradient with respect to pose degrees of freedom.
  /// Torque is the derivative with respect to an infinitesimal world-frame
  /// rotation about the ligand centroid; torsion entries follow the pose's
  /// torsion order.
  double evaluate_with_gradient(const Pose& pose, PoseGradient& grad) const;

  /// Same, but with coordinates and forces in an explicit caller-owned arena.
  double evaluate_with_gradient(const Pose& pose, ScorerScratch& scratch,
                                PoseGradient& grad) const;

  /// Energy (and per-atom Cartesian forces, if requested) at explicit atom
  /// coordinates — the pose-independent inner kernel, exposed for analysis
  /// and boundary tests. `coords` must hold atom_count() entries. A non-null
  /// `forces` is resized to match, which may allocate on first use; the
  /// scratch overload below is the allocation-free form.
  double score_coords(const std::vector<common::Vec3>& coords,
                      std::vector<common::Vec3>* forces = nullptr) const;

  /// Allocation-free score_coords: forces are accumulated into
  /// `scratch.forces` (pre-sized from the arena, no caller-side vector
  /// growth). Steady-state calls perform zero heap allocations.
  double score_coords(const std::vector<common::Vec3>& coords,
                      ScorerScratch& scratch) const;

  /// Batched energy-only evaluation: scores all poses of `batch` at once
  /// through the SoA lane kernels (see score_batch.hpp), writing
  /// batch.count energies. Each lane's score is bit-identical to the
  /// scalar evaluate() of the same pose; the evaluation counter advances
  /// by batch.count (one work unit per pose, not per batch). Steady-state
  /// calls with a warmed `scratch` perform zero heap allocations.
  void evaluate_batch(const PoseBatch& batch, BatchScratch& scratch,
                      double* energies) const;

  /// Batched energy + pose-space gradients: lane-identical to
  /// evaluate_with_gradient per pose. `energies` and `grads` must hold
  /// batch.count slots; grads[l].torsions is sized in place (allocation-free
  /// once warmed, like the scalar path).
  void evaluate_with_gradient_batch(const PoseBatch& batch,
                                    BatchScratch& scratch, double* energies,
                                    PoseGradient* grads) const;

  /// Number of evaluate* calls since construction (work units).
  std::uint64_t evaluations() const { return evals_; }

  const Ligand& ligand() const { return ligand_; }
  const AffinityGrid& grid() const { return grid_; }

 private:
  /// Pose-space reduction: per-atom Cartesian forces -> translation force,
  /// torque about pose.translation, torsion-axis components. Shared by the
  /// scalar and batched gradient paths and deliberately kept out of line:
  /// inlining it into differently-vectorized callers lets the compiler
  /// contract the cross-product FMAs differently per call site, which would
  /// break the bitwise batched-vs-scalar identity under -march=native.
  [[gnu::noinline]] void reduce_pose_gradient(const common::Vec3* coords,
                                              const common::Vec3* forces,
                                              std::size_t n, const Pose& pose,
                                              PoseGradient& grad) const;

  /// Energy-only kernel (no gradient math) at explicit coordinates.
  double energy_only(const common::Vec3* coords, std::size_t n) const;

  /// Energy + per-atom forces at explicit coordinates. `forces` must hold
  /// `n` zero-initialized entries.
  double energy_and_forces(const common::Vec3* coords, std::size_t n,
                           common::Vec3* forces) const;

  const AffinityGrid& grid_;
  const Ligand& ligand_;
  /// Per-atom probe map, resolved once at construction (atoms -> fields).
  std::vector<const GridField*> atom_fields_;
  std::vector<double> charges_;  ///< flat per-atom charges (SoA hot data)
  mutable ScorerScratch scratch_;  ///< fallback arena for the plain signatures
  mutable std::atomic<std::uint64_t> evals_{0};
};

}  // namespace impeccable::dock
