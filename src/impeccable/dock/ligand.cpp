#include "impeccable/dock/ligand.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "impeccable/chem/descriptors.hpp"
#include "impeccable/chem/layout.hpp"

namespace impeccable::dock {

using common::Vec3;

void Pose::normalize_quaternion() {
  const double n = std::sqrt(qw * qw + qx * qx + qy * qy + qz * qz);
  if (n < 1e-12) {
    qw = 1.0; qx = qy = qz = 0.0;
    return;
  }
  qw /= n; qx /= n; qy /= n; qz /= n;
}

void Pose::rotate_by(const Vec3& omega) {
  const double angle = omega.norm();
  double dw = 1.0, dx = 0.0, dy = 0.0, dz = 0.0;
  if (angle > 1e-12) {
    const Vec3 axis = omega / angle;
    const double h = angle / 2.0;
    dw = std::cos(h);
    const double s = std::sin(h);
    dx = axis.x * s; dy = axis.y * s; dz = axis.z * s;
  }
  // q' = dq * q (world-frame increment).
  const double nw = dw * qw - dx * qx - dy * qy - dz * qz;
  const double nx = dw * qx + dx * qw + dy * qz - dz * qy;
  const double ny = dw * qy - dx * qz + dy * qw + dz * qx;
  const double nz = dw * qz + dx * qy - dy * qx + dz * qw;
  qw = nw; qx = nx; qy = ny; qz = nz;
  normalize_quaternion();
}

ProbeType probe_type_for(const chem::Molecule& mol, int atom) {
  const chem::Atom& a = mol.atom(atom);
  const chem::ElementInfo& ei = chem::info(a.element);
  switch (a.element) {
    case chem::Element::C:
    case chem::Element::B:
      return a.aromatic ? ProbeType::Aromatic : ProbeType::Carbon;
    case chem::Element::S:
    case chem::Element::P:
      if (ei.hbond_donor_capable && mol.hydrogen_count(atom) > 0)
        return ProbeType::Donor;
      return ProbeType::Sulfur;
    case chem::Element::N:
    case chem::Element::O:
      return mol.hydrogen_count(atom) > 0 ? ProbeType::Donor
                                          : ProbeType::Acceptor;
    case chem::Element::F:
      // F is a weak acceptor but behaves halogen-like in pockets.
      return ProbeType::Halogen;
    default:
      return ProbeType::Halogen;
  }
}

std::vector<double> partial_charges(const chem::Molecule& mol) {
  const int n = mol.atom_count();
  std::vector<double> q(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i)
    q[static_cast<std::size_t>(i)] = mol.atom(i).formal_charge;

  // Electronegativity equalization: charge flows across each bond towards
  // the more electronegative end, damped over three rounds.
  for (int round = 0; round < 3; ++round) {
    const double k = 0.12 / (1 << round);
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    for (int bi = 0; bi < mol.bond_count(); ++bi) {
      const chem::Bond& b = mol.bond(bi);
      const double chi_a = chem::info(mol.atom(b.a).element).electronegativity;
      const double chi_b = chem::info(mol.atom(b.b).element).electronegativity;
      const double flow = k * (chi_b - chi_a);  // >0: b pulls electrons from a
      delta[static_cast<std::size_t>(b.a)] += flow;
      delta[static_cast<std::size_t>(b.b)] -= flow;
    }
    for (int i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] += delta[static_cast<std::size_t>(i)];
  }
  return q;
}

Ligand::Ligand(const chem::Molecule& mol, std::uint64_t conformer_seed) {
  if (!mol.finalized()) throw std::invalid_argument("Ligand: molecule not finalized");
  const int n = mol.atom_count();

  ref_coords_ = chem::embed_3d(mol, conformer_seed);

  const auto charges = partial_charges(mol);
  atoms_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    LigandAtom& la = atoms_[static_cast<std::size_t>(i)];
    la.probe = probe_type_for(mol, i);
    la.charge = charges[static_cast<std::size_t>(i)];
    const chem::ElementInfo& ei = chem::info(mol.atom(i).element);
    la.vdw_radius = ei.vdw_radius;
    la.well_depth = ei.well_depth;
  }

  // Rotatable bonds and their moving sets. The moving set of bond (a, b) is
  // the connected component of b when the bond is removed; we orient each
  // bond so the moving side does NOT contain the root atom (atom 0).
  std::vector<int> rotatable;
  for (int bi = 0; bi < mol.bond_count(); ++bi)
    if (chem::is_rotatable(mol, bi)) rotatable.push_back(bi);

  auto component_without = [&](int blocked_bond, int start) {
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<int> out, stack{start};
    seen[static_cast<std::size_t>(start)] = true;
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      out.push_back(cur);
      for (int bj : mol.bonds_of(cur)) {
        if (bj == blocked_bond) continue;
        const int to = mol.neighbor(cur, bj);
        if (!seen[static_cast<std::size_t>(to)]) {
          seen[static_cast<std::size_t>(to)] = true;
          stack.push_back(to);
        }
      }
    }
    return out;
  };

  const int root = 0;
  for (int bi : rotatable) {
    const chem::Bond& b = mol.bond(bi);
    Torsion t;
    auto side_b = component_without(bi, b.b);
    const bool root_in_b =
        std::find(side_b.begin(), side_b.end(), root) != side_b.end();
    if (root_in_b) {
      t.axis_a = b.b;
      t.axis_b = b.a;
      t.moving = component_without(bi, b.a);
    } else {
      t.axis_a = b.a;
      t.axis_b = b.b;
      t.moving = std::move(side_b);
    }
    // The proximal axis atom must not rotate with the set.
    t.moving.erase(std::remove(t.moving.begin(), t.moving.end(), t.axis_b),
                   t.moving.end());
    // axis_b anchors the axis; distal atoms beyond it rotate. Keep axis_b
    // out of the moving list (rotating it about the a-b axis is a no-op but
    // wastes work); everything else in its component rotates.
    torsions_.push_back(std::move(t));
  }

  // Order torsions root -> leaf: sort by BFS depth of axis_b from root.
  std::vector<int> depth(static_cast<std::size_t>(n), -1);
  std::queue<int> q;
  q.push(root);
  depth[static_cast<std::size_t>(root)] = 0;
  while (!q.empty()) {
    const int cur = q.front();
    q.pop();
    for (int bj : mol.bonds_of(cur)) {
      const int to = mol.neighbor(cur, bj);
      if (depth[static_cast<std::size_t>(to)] == -1) {
        depth[static_cast<std::size_t>(to)] = depth[static_cast<std::size_t>(cur)] + 1;
        q.push(to);
      }
    }
  }
  std::stable_sort(torsions_.begin(), torsions_.end(),
                   [&](const Torsion& x, const Torsion& y) {
                     return depth[static_cast<std::size_t>(x.axis_a)] <
                            depth[static_cast<std::size_t>(y.axis_a)];
                   });

  // Intramolecular nonbonded pairs: topological distance > 3.
  std::vector<std::vector<int>> dist(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    std::vector<int> d(static_cast<std::size_t>(n), 1 << 20);
    std::queue<int> bq;
    bq.push(s);
    d[static_cast<std::size_t>(s)] = 0;
    while (!bq.empty()) {
      const int cur = bq.front();
      bq.pop();
      if (d[static_cast<std::size_t>(cur)] >= 4) continue;
      for (int bj : mol.bonds_of(cur)) {
        const int to = mol.neighbor(cur, bj);
        if (d[static_cast<std::size_t>(to)] > d[static_cast<std::size_t>(cur)] + 1) {
          d[static_cast<std::size_t>(to)] = d[static_cast<std::size_t>(cur)] + 1;
          bq.push(to);
        }
      }
    }
    dist[static_cast<std::size_t>(s)] = std::move(d);
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] > 3)
        nb_pairs_.emplace_back(i, j);

  // Precompute the LJ pair parameters once; the scorer reads this table
  // instead of re-deriving sqrt(well_i * well_j) per evaluation.
  pair_table_.reserve(nb_pairs_.size());
  for (const auto& [i, j] : nb_pairs_) {
    NonbondedPair p;
    p.i = i;
    p.j = j;
    p.rij = 0.9 * (atoms_[static_cast<std::size_t>(i)].vdw_radius +
                   atoms_[static_cast<std::size_t>(j)].vdw_radius);
    p.eps = std::sqrt(atoms_[static_cast<std::size_t>(i)].well_depth *
                      atoms_[static_cast<std::size_t>(j)].well_depth);
    p.eps12 = 12.0 * p.eps;
    pair_table_.push_back(p);
  }

  // Center the reference conformation on its centroid.
  Vec3 c;
  for (const auto& p : ref_coords_) c += p;
  c /= static_cast<double>(n);
  for (auto& p : ref_coords_) p -= c;
}

void Ligand::build_coords(const Pose& pose, std::vector<Vec3>& out) const {
  out.resize(ref_coords_.size());  // no reallocation once capacity is grown
  build_coords_into(pose, out.data());
}

void Ligand::build_coords_into(const Pose& pose, Vec3* out) const {
  const std::size_t n = ref_coords_.size();
  std::copy(ref_coords_.begin(), ref_coords_.end(), out);

  for (std::size_t t = 0; t < torsions_.size(); ++t) {
    const Torsion& tor = torsions_[t];
    const double angle = pose.torsions[t];
    if (std::abs(angle) < 1e-12) continue;
    const Vec3 pa = out[static_cast<std::size_t>(tor.axis_a)];
    const Vec3 pb = out[static_cast<std::size_t>(tor.axis_b)];
    const Vec3 axis = (pb - pa).normalized();
    for (int idx : tor.moving) {
      Vec3& p = out[static_cast<std::size_t>(idx)];
      p = pb + common::rotate_about_axis(p - pb, axis, angle);
    }
  }

  // Rigid placement: rotate about the reference-frame origin (the centered
  // reference centroid), then translate. Rotating about a torsion-independent
  // point keeps the pose-space gradients exact (see ScoringFunction).
  const double w = pose.qw, x = pose.qx, y = pose.qy, z = pose.qz;
  const double r00 = w * w + x * x - y * y - z * z;
  const double r01 = 2 * (x * y - w * z);
  const double r02 = 2 * (x * z + w * y);
  const double r10 = 2 * (x * y + w * z);
  const double r11 = w * w - x * x + y * y - z * z;
  const double r12 = 2 * (y * z - w * x);
  const double r20 = 2 * (x * z - w * y);
  const double r21 = 2 * (y * z + w * x);
  const double r22 = w * w - x * x - y * y + z * z;

  for (std::size_t a = 0; a < n; ++a) {
    const Vec3 v = out[a];
    out[a] = Vec3{r00 * v.x + r01 * v.y + r02 * v.z,
                  r10 * v.x + r11 * v.y + r12 * v.z,
                  r20 * v.x + r21 * v.y + r22 * v.z} +
             pose.translation;
  }
}

void Ligand::build_coords_batch(const Pose* const* poses, int count, int lanes,
                                double* xs, double* ys, double* zs) const {
  // Mirrors kMaxBatchPoses (score_batch.hpp); this header stays scorer-free.
  constexpr int kML = 16;
  assert(count <= lanes && lanes <= kML);
  const std::size_t n = ref_coords_.size();
  const std::size_t L = static_cast<std::size_t>(lanes);

  // Broadcast the centered reference conformation into the lane planes.
  // Padding lanes start at zero and stay inert through both stages below
  // (skip selects, zero matrices), so downstream kernels read exact zeros.
  for (std::size_t a = 0; a < n; ++a) {
    const Vec3 r = ref_coords_[a];
    double* xr = xs + a * L;
    double* yr = ys + a * L;
    double* zr = zs + a * L;
    for (int l = 0; l < count; ++l) {
      xr[l] = r.x;
      yr[l] = r.y;
      zr[l] = r.z;
    }
    for (int l = count; l < lanes; ++l) {
      xr[l] = 0.0;
      yr[l] = 0.0;
      zr[l] = 0.0;
    }
  }

  // Torsion stage, lane-parallel: per torsion, resolve each lane's axis and
  // rotation scalar-side (sin/cos must stay scalar libm calls — vector math
  // libraries are not bit-exact), then rotate the moving set across lanes.
  // Every expression mirrors build_coords_into / rotate_about_axis term for
  // term; this translation unit is compiled with FP contraction off (see
  // dock/CMakeLists.txt), so each lane rounds exactly like the scalar path.
  double ax[kML], ay[kML], az[kML], pbx[kML], pby[kML], pbz[kML];
  double cc[kML], ss[kML], omc[kML];
  bool skip[kML];
  for (std::size_t t = 0; t < torsions_.size(); ++t) {
    const Torsion& tor = torsions_[t];
    const std::size_t oa = static_cast<std::size_t>(tor.axis_a) * L;
    const std::size_t ob = static_cast<std::size_t>(tor.axis_b) * L;
    // Rotation angles scalar-side: sin/cos stay libm calls per active lane.
    bool any = false;
    for (int l = 0; l < lanes; ++l) {
      const double angle = l < count ? poses[l]->torsions[t] : 0.0;
      if (std::abs(angle) < 1e-12) {
        skip[l] = true;
        cc[l] = 1.0; ss[l] = 0.0; omc[l] = 0.0;
        continue;
      }
      any = true;
      skip[l] = false;
      cc[l] = std::cos(angle);
      ss[l] = std::sin(angle);
      omc[l] = 1.0 - cc[l];
    }
    if (!any) continue;
    // Per-lane rotation axis, vectorized: sqrt and division are correctly
    // rounded in vector form, so this matches (pb - pa).normalized() bit for
    // bit. Skipped lanes compute a discarded (finite) axis — the guarded
    // denominator keeps even degenerate lanes free of division by zero.
#pragma omp simd
    for (int l = 0; l < lanes; ++l) {
      const double dx = xs[ob + l] - xs[oa + l];
      const double dy = ys[ob + l] - ys[oa + l];
      const double dz = zs[ob + l] - zs[oa + l];
      const double nrm = std::sqrt(dx * dx + dy * dy + dz * dz);
      const bool degenerate = nrm <= 0.0;
      const double safe = degenerate ? 1.0 : nrm;
      ax[l] = degenerate ? 1.0 : dx / safe;
      ay[l] = degenerate ? 0.0 : dy / safe;
      az[l] = degenerate ? 0.0 : dz / safe;
      pbx[l] = xs[ob + l];
      pby[l] = ys[ob + l];
      pbz[l] = zs[ob + l];
    }
    for (int idx : tor.moving) {
      const std::size_t om = static_cast<std::size_t>(idx) * L;
      double* __restrict X = xs + om;
      double* __restrict Y = ys + om;
      double* __restrict Z = zs + om;
#pragma omp simd
      for (int l = 0; l < lanes; ++l) {
        // p - pb, then Rodrigues: v*c + (axis x v)*s + axis*((axis . v)*(1-c)).
        const double vx = X[l] - pbx[l];
        const double vy = Y[l] - pby[l];
        const double vz = Z[l] - pbz[l];
        const double cx = ay[l] * vz - az[l] * vy;
        const double cy = az[l] * vx - ax[l] * vz;
        const double cz = ax[l] * vy - ay[l] * vx;
        const double w = (ax[l] * vx + ay[l] * vy + az[l] * vz) * omc[l];
        const double rx = vx * cc[l] + cx * ss[l] + ax[l] * w;
        const double ry = vy * cc[l] + cy * ss[l] + ay[l] * w;
        const double rz = vz * cc[l] + cz * ss[l] + az[l] * w;
        X[l] = skip[l] ? X[l] : pbx[l] + rx;
        Y[l] = skip[l] ? Y[l] : pby[l] + ry;
        Z[l] = skip[l] ? Z[l] : pbz[l] + rz;
      }
    }
  }

  // Rigid placement, lane-parallel: per-lane rotation matrix from the pose
  // quaternion (expressions mirror build_coords_into), then one vectorized
  // pass over the planes. Padding lanes get the zero matrix and zero
  // translation, leaving their planes at exact zero.
  double r00[kML], r01[kML], r02[kML], r10[kML], r11[kML], r12[kML];
  double r20[kML], r21[kML], r22[kML], tx[kML], ty[kML], tz[kML];
  for (int l = 0; l < count; ++l) {
    const Pose& pose = *poses[l];
    const double w = pose.qw, x = pose.qx, y = pose.qy, z = pose.qz;
    r00[l] = w * w + x * x - y * y - z * z;
    r01[l] = 2 * (x * y - w * z);
    r02[l] = 2 * (x * z + w * y);
    r10[l] = 2 * (x * y + w * z);
    r11[l] = w * w - x * x + y * y - z * z;
    r12[l] = 2 * (y * z - w * x);
    r20[l] = 2 * (x * z - w * y);
    r21[l] = 2 * (y * z + w * x);
    r22[l] = w * w - x * x - y * y + z * z;
    tx[l] = pose.translation.x;
    ty[l] = pose.translation.y;
    tz[l] = pose.translation.z;
  }
  for (int l = count; l < lanes; ++l) {
    r00[l] = r01[l] = r02[l] = 0.0;
    r10[l] = r11[l] = r12[l] = 0.0;
    r20[l] = r21[l] = r22[l] = 0.0;
    tx[l] = ty[l] = tz[l] = 0.0;
  }
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t off = a * L;
    double* __restrict X = xs + off;
    double* __restrict Y = ys + off;
    double* __restrict Z = zs + off;
#pragma omp simd
    for (int l = 0; l < lanes; ++l) {
      const double vx = X[l], vy = Y[l], vz = Z[l];
      X[l] = r00[l] * vx + r01[l] * vy + r02[l] * vz + tx[l];
      Y[l] = r10[l] * vx + r11[l] * vy + r12[l] * vz + ty[l];
      Z[l] = r20[l] * vx + r21[l] * vy + r22[l] * vz + tz[l];
    }
  }
}

Pose Ligand::identity_pose(const Vec3& center) const {
  Pose p;
  p.translation = center;
  p.torsions.assign(torsions_.size(), 0.0);
  return p;
}

Pose Ligand::random_pose(const Vec3& center, double radius,
                         common::Rng& rng) const {
  Pose p = identity_pose(center);
  // Uniform point in a sphere (rejection).
  for (;;) {
    const Vec3 d{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (d.norm2() <= 1.0) {
      p.translation = center + d * radius;
      break;
    }
  }
  // Random orientation: uniform quaternion (Shoemake).
  const double u1 = rng.uniform(), u2 = rng.uniform(), u3 = rng.uniform();
  const double tau = 2.0 * 3.14159265358979323846;
  p.qw = std::sqrt(1 - u1) * std::sin(tau * u2);
  p.qx = std::sqrt(1 - u1) * std::cos(tau * u2);
  p.qy = std::sqrt(u1) * std::sin(tau * u3);
  p.qz = std::sqrt(u1) * std::cos(tau * u3);
  for (auto& t : p.torsions) t = rng.uniform(-3.14159265, 3.14159265);
  return p;
}

}  // namespace impeccable::dock
