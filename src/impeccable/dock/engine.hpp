#pragma once
// DockingEngine — the AutoDock-GPU equivalent used by stage S1.
//
// For one (receptor grid, ligand) pair it runs `runs` independent LGA
// searches, clusters the final poses by RMSD, and reports the best pose and
// score ("A drug screen takes the best scoring pose from these independent
// outputs", Sec. 5.1.1). Receptor re-use across many ligands is the natural
// calling pattern: compile the grid once, dock a stream of ligands.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "impeccable/chem/molecule.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/dock/receptor.hpp"
#include "impeccable/dock/search.hpp"

namespace impeccable::dock {

struct DockOptions {
  int runs = 4;                    ///< independent LGA runs per ligand
  double cluster_rmsd = 2.0;       ///< Å, pose clustering tolerance
  LgaOptions lga;
  std::uint64_t seed = 0x0d0cULL;  ///< base seed; per-run streams derive from it
  std::uint64_t conformer_seed = 7;
  /// Pool for the independent LGA runs (not owned, may be null = serial).
  /// Per-run RNG streams are spawned serially before dispatch, so results
  /// are identical whatever the pool size.
  common::ThreadPool* pool = nullptr;
};

struct PoseCluster {
  double best_energy = 0.0;
  int members = 0;
  Pose representative;
};

struct DockResult {
  std::string ligand_id;
  double best_score = 0.0;          ///< kcal/mol-ish; lower = better binding
  Pose best_pose;
  std::vector<common::Vec3> best_coords;
  std::vector<PoseCluster> clusters;  ///< sorted by best_energy
  std::uint64_t evaluations = 0;      ///< total scoring calls (work units)
  int torsion_count = 0;
};

/// Dock one molecule against a precompiled grid.
DockResult dock(const AffinityGrid& grid, const chem::Molecule& mol,
                const std::string& ligand_id, const DockOptions& opts = {});

/// Conformer-ensemble docking — the "ligand 3D structure (conformer)
/// enumeration" step of the S1 protocol (Sec. 3.2): embed `conformers`
/// distinct 3D conformers of the molecule (derived seeds), dock each, and
/// return the best result. `conformer_scores`, if given, receives the best
/// score per conformer.
DockResult dock_conformer_ensemble(const AffinityGrid& grid,
                                   const chem::Molecule& mol,
                                   const std::string& ligand_id,
                                   int conformers, const DockOptions& opts = {},
                                   std::vector<double>* conformer_scores = nullptr);

/// Multi-crystal-structure docking (Sec. 7.1.2: "multiple crystal structures
/// were used to perform docking"): dock against each grid and return the
/// best-scoring result, recording which structure won in `best_structure`.
DockResult dock_multi_structure(
    const std::vector<std::shared_ptr<const AffinityGrid>>& grids,
    const chem::Molecule& mol, const std::string& ligand_id,
    const DockOptions& opts = {}, int* best_structure = nullptr);

/// Approximate floating-point operations for one pose evaluation of a ligand
/// with `atoms` atoms and `nb_pairs` intramolecular pairs — the per-work-unit
/// flop model backing Table 3's S1 row.
std::uint64_t flops_per_evaluation(int atoms, int nb_pairs);

}  // namespace impeccable::dock
