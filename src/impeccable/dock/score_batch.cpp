// Batched SoA scoring kernels (see score_batch.hpp for the layout). The
// per-lane arithmetic mirrors the scalar kernels in score.cpp expression
// for expression — scores must stay bit-identical per pose so the LGA can
// route its population through batches without changing a single
// trajectory. Any change here must be mirrored there and vice versa; the
// batched golden suite (dock_batch_test) pins the equivalence at every
// batch size.

#include "impeccable/dock/score_batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace impeccable::dock {

using common::Vec3;

void BatchScratch::reset(int atom_count, int lane_count) {
  assert(lane_count > 0 && lane_count <= kMaxBatchPoses);
  lanes = lane_count;
  if (atom_count != atoms) {
    // Size every plane for the maximum lane stride once per ligand geometry,
    // so alternating batch sizes never reallocate in steady state.
    atoms = atom_count;
    const std::size_t plane =
        static_cast<std::size_t>(atom_count) * kMaxBatchPoses;
    x.resize(plane);
    y.resize(plane);
    z.resize(plane);
    energy.resize(kMaxBatchPoses);
    aos.resize(static_cast<std::size_t>(atom_count));
  }
  std::fill(energy.begin(), energy.begin() + lanes, 0.0);
}

void BatchScratch::reset_forces() {
  const std::size_t plane = static_cast<std::size_t>(atoms) * kMaxBatchPoses;
  if (fx.size() != plane) {
    fx.resize(plane);
    fy.resize(plane);
    fz.resize(plane);
    aos_f.resize(static_cast<std::size_t>(atoms));
  }
  const std::size_t used = static_cast<std::size_t>(atoms) * lanes;
  std::fill(fx.begin(), fx.begin() + used, 0.0);
  std::fill(fy.begin(), fy.begin() + used, 0.0);
  std::fill(fz.begin(), fz.begin() + used, 0.0);
}

void ScoringFunction::evaluate_batch(const PoseBatch& batch,
                                     BatchScratch& scratch,
                                     double* energies) const {
  const int count = batch.count;
  if (count == 0) return;
  assert(count <= kMaxBatchPoses);
  evals_.fetch_add(static_cast<std::uint64_t>(count),
                   std::memory_order_relaxed);

  const int n = static_cast<int>(ligand_.atoms().size());
  const int L = padded_lane_count(count);
  scratch.reset(n, L);
  ligand_.build_coords_batch(batch.poses.data(), count, L, scratch.x.data(),
                             scratch.y.data(), scratch.z.data());

  const double* __restrict X = scratch.x.data();
  const double* __restrict Y = scratch.y.data();
  const double* __restrict Z = scratch.z.data();
  double* __restrict en = scratch.energy.data();

  // Intermolecular: per atom, one fused batched cell locate over both maps;
  // the lane loop accumulates exactly the scalar per-atom expression.
  const GridField& ele = grid_.electrostatic;
  double av[kMaxBatchPoses], ev[kMaxBatchPoses];
  for (int a = 0; a < n; ++a) {
    const std::size_t off = static_cast<std::size_t>(a) * L;
    atom_fields_[static_cast<std::size_t>(a)]->sample_pair_values_batch(
        X + off, Y + off, Z + off, L, ele, av, ev);
    const double q = charges_[static_cast<std::size_t>(a)];
#pragma omp simd
    for (int l = 0; l < L; ++l) en[l] += av[l] + q * ev[l];
  }

  // Intramolecular: one sweep of the pair table per batch — each pair's
  // parameters are loaded once and the distance/LJ math runs across lanes.
  for (const NonbondedPair& p : ligand_.pair_table()) {
    const std::size_t oi = static_cast<std::size_t>(p.i) * L;
    const std::size_t oj = static_cast<std::size_t>(p.j) * L;
    const double rij = p.rij, eps = p.eps;
#pragma omp simd
    for (int l = 0; l < L; ++l) {
      const double dx = X[oj + l] - X[oi + l];
      const double dy = Y[oj + l] - Y[oi + l];
      const double dz = Z[oj + l] - Z[oi + l];
      const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
      const double r = std::max(0.8, dist);
      const double rr = rij / r;
      const double rr6 = rr * rr * rr * rr * rr * rr;
      const double u = eps * (rr6 * rr6 - 2.0 * rr6);
      en[l] += u < 100.0 ? u : 100.0;
    }
  }

  for (int l = 0; l < count; ++l) energies[l] = en[l];
}

void ScoringFunction::evaluate_with_gradient_batch(const PoseBatch& batch,
                                                   BatchScratch& scratch,
                                                   double* energies,
                                                   PoseGradient* grads) const {
  const int count = batch.count;
  if (count == 0) return;
  assert(count <= kMaxBatchPoses);
  evals_.fetch_add(static_cast<std::uint64_t>(count),
                   std::memory_order_relaxed);

  const int n = static_cast<int>(ligand_.atoms().size());
  const int L = padded_lane_count(count);
  scratch.reset(n, L);
  scratch.reset_forces();
  ligand_.build_coords_batch(batch.poses.data(), count, L, scratch.x.data(),
                             scratch.y.data(), scratch.z.data());

  const double* __restrict X = scratch.x.data();
  const double* __restrict Y = scratch.y.data();
  const double* __restrict Z = scratch.z.data();
  double* __restrict FX = scratch.fx.data();
  double* __restrict FY = scratch.fy.data();
  double* __restrict FZ = scratch.fz.data();
  double* __restrict en = scratch.energy.data();

  const GridField& ele = grid_.electrostatic;
  double av[kMaxBatchPoses], agx[kMaxBatchPoses], agy[kMaxBatchPoses],
      agz[kMaxBatchPoses];
  double evv[kMaxBatchPoses], egx[kMaxBatchPoses], egy[kMaxBatchPoses],
      egz[kMaxBatchPoses];
  for (int a = 0; a < n; ++a) {
    const std::size_t off = static_cast<std::size_t>(a) * L;
    atom_fields_[static_cast<std::size_t>(a)]->sample_pair_batch(
        X + off, Y + off, Z + off, L, ele, av, agx, agy, agz, evv, egx, egy,
        egz);
    const double q = charges_[static_cast<std::size_t>(a)];
#pragma omp simd
    for (int l = 0; l < L; ++l) {
      en[l] += av[l] + q * evv[l];
      FX[off + l] += agx[l] + egx[l] * q;
      FY[off + l] += agy[l] + egy[l] * q;
      FZ[off + l] += agz[l] + egz[l] * q;
    }
  }

  for (const NonbondedPair& p : ligand_.pair_table()) {
    const std::size_t oi = static_cast<std::size_t>(p.i) * L;
    const std::size_t oj = static_cast<std::size_t>(p.j) * L;
    const double rij = p.rij, eps = p.eps, eps12 = p.eps12;
#pragma omp simd
    for (int l = 0; l < L; ++l) {
      const double dx = X[oj + l] - X[oi + l];
      const double dy = Y[oj + l] - Y[oi + l];
      const double dz = Z[oj + l] - Z[oi + l];
      const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
      const double r = std::max(0.8, dist);
      const double rr = rij / r;
      const double rr6 = rr * rr * rr * rr * rr * rr;
      const double u = eps * (rr6 * rr6 - 2.0 * rr6);
      // Clamp handling mirrors energy_and_forces: zero force on exactly the
      // clamped set, so energy and gradient agree at both boundaries.
      const bool u_clamped = !(u < 100.0);
      const bool r_clamped = !(dist > 0.8);
      en[l] += u_clamped ? 100.0 : u;
      if (!u_clamped && !r_clamped) {
        const double du_dr = eps12 * (rr6 - rr6 * rr6) / r;
        const double dirx = dx / r, diry = dy / r, dirz = dz / r;
        FX[oj + l] += dirx * du_dr;
        FY[oj + l] += diry * du_dr;
        FZ[oj + l] += dirz * du_dr;
        FX[oi + l] -= dirx * du_dr;
        FY[oi + l] -= diry * du_dr;
        FZ[oi + l] -= dirz * du_dr;
      }
    }
  }

  // Pose-space reduction per lane: de-interleave the lane's coordinates and
  // forces back to AoS and run the scalar reduction function. Sharing the
  // exact (out-of-line) reduction code with evaluate_with_gradient is what
  // keeps the reduced gradients bit-identical even when -march=native
  // contracts the cross-product FMAs (an inlined per-path copy could
  // contract differently per call site).
  for (int l = 0; l < count; ++l) {
    Vec3* ca = scratch.aos.data();
    Vec3* fa = scratch.aos_f.data();
    for (int a = 0; a < n; ++a) {
      const std::size_t off = static_cast<std::size_t>(a) * L + l;
      ca[a] = Vec3{X[off], Y[off], Z[off]};
      fa[a] = Vec3{FX[off], FY[off], FZ[off]};
    }
    reduce_pose_gradient(ca, fa, static_cast<std::size_t>(n),
                         *batch.poses[static_cast<std::size_t>(l)], grads[l]);
    energies[l] = en[l];
  }
}

}  // namespace impeccable::dock
