#include "impeccable/common/rng_audit.hpp"

#include <cstdio>
#include <cstdlib>

#include "impeccable/common/checks.hpp"

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define IMPECCABLE_HAVE_EXECINFO 1
#endif

namespace impeccable::common::rng_audit {

namespace {

constexpr int kMaxFrames = 32;

/// Where (and by whom) a stream was acquired. Heap-allocated at first draw;
/// the 16-byte in-object tag stays fixed-size.
struct AcquireContext {
  std::uint64_t thread_id = 0;
  int frame_count = 0;
  void* frames[kMaxFrames] = {};
};

void print_frames(void* const* frames, int n) {
#ifdef IMPECCABLE_HAVE_EXECINFO
  backtrace_symbols_fd(frames, n, 2);
#else
  (void)frames;
  (void)n;
#endif
}

}  // namespace

StreamTag::~StreamTag() { release(); }

std::uint64_t StreamTag::cached_thread_id() {
  return checks::this_thread_id();
}

void StreamTag::release() {
  owner_.store(0, std::memory_order_relaxed);
  if (void* p = ctx_.exchange(nullptr, std::memory_order_acq_rel))
    delete static_cast<AcquireContext*>(p);
}

void StreamTag::handoff() {
  const std::uint64_t me = cached_thread_id();
  const std::uint64_t cur = owner_.load(std::memory_order_relaxed);
  if (cur != 0 && cur != me) {
    std::fprintf(stderr,
                 "\nRNG-ownership audit: handoff() by thread %llu but the "
                 "stream is owned by thread %llu\n  (only the owner — or a "
                 "point with no draws in flight — may hand a stream off)\n",
                 static_cast<unsigned long long>(me),
                 static_cast<unsigned long long>(cur));
    std::fflush(stderr);
    std::abort();
  }
  // Release ordering: the new owner's acquiring CAS in acquire_or_abort()
  // synchronizes with this store, so draws after the handoff happen-after
  // every draw before it.
  owner_.store(0, std::memory_order_release);
  if (void* p = ctx_.exchange(nullptr, std::memory_order_acq_rel))
    delete static_cast<AcquireContext*>(p);
}

void StreamTag::acquire_or_abort(std::uint64_t me) {
  std::uint64_t expected = 0;
  if (owner_.compare_exchange_strong(expected, me, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    auto* ctx = new AcquireContext;
    ctx->thread_id = me;
#ifdef IMPECCABLE_HAVE_EXECINFO
    ctx->frame_count = backtrace(ctx->frames, kMaxFrames);
#endif
    // A racing first draw is itself a violation; whoever loses the ctx
    // publish race still reports through the owner_ mismatch below on its
    // next draw, so last-writer-wins is fine here.
    if (void* prev = ctx_.exchange(ctx, std::memory_order_acq_rel))
      delete static_cast<AcquireContext*>(prev);
    return;
  }

  // Foreign draw: report both contexts, then die. This is a seed-stream
  // race — the draw order (and thus every downstream score) would depend
  // on thread scheduling.
  const auto* ctx =
      static_cast<const AcquireContext*>(ctx_.load(std::memory_order_acquire));
  std::fprintf(stderr,
               "\nRNG-ownership audit: thread %llu drew from a stream owned "
               "by thread %llu without a handoff\n",
               static_cast<unsigned long long>(me),
               static_cast<unsigned long long>(expected));
  std::fprintf(stderr, "  stream acquired by thread %llu at:\n",
               ctx ? static_cast<unsigned long long>(ctx->thread_id)
                   : static_cast<unsigned long long>(expected));
  std::fflush(stderr);
  if (ctx != nullptr) print_frames(ctx->frames, ctx->frame_count);
  std::fprintf(stderr, "  foreign draw by thread %llu at:\n",
               static_cast<unsigned long long>(me));
  std::fflush(stderr);
#ifdef IMPECCABLE_HAVE_EXECINFO
  void* here[kMaxFrames];
  print_frames(here, backtrace(here, kMaxFrames));
#endif
  std::fprintf(stderr,
               "  fix: draw on one thread, or call audit_handoff() at the "
               "transfer point (see DESIGN.md \"Correctness tooling\")\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace impeccable::common::rng_audit
