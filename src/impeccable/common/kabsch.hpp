#pragma once
// Optimal rigid-body superposition (Kabsch/Horn) and RMSD.
//
// Used by: docking pose clustering (RMSD between final poses), the MD
// trajectory analysis feeding Fig. 5B (per-frame RMSD to the starting
// conformation) and the contact/stability metrics of S2.

#include <array>
#include <span>
#include <vector>

#include "impeccable/common/vec3.hpp"

namespace impeccable::common {

/// Plain RMSD without superposition (poses already share a frame, as in
/// docking where the receptor fixes the coordinate system).
double rmsd_raw(std::span<const Vec3> a, std::span<const Vec3> b);

/// Result of an optimal superposition of b onto a.
struct Superposition {
  std::array<std::array<double, 3>, 3> rotation{};  ///< row-major R
  Vec3 translation;  ///< apply as: R*(x - centroid_b) + centroid_a
  Vec3 centroid_a;
  Vec3 centroid_b;
  double rmsd = 0.0;  ///< RMSD after superposition
};

/// Horn's quaternion method: least-squares rotation + translation mapping
/// point set `b` onto `a` (equal sizes required, size >= 1).
Superposition superpose(std::span<const Vec3> a, std::span<const Vec3> b);

/// Minimum RMSD between the two sets over all rigid transforms.
double rmsd_superposed(std::span<const Vec3> a, std::span<const Vec3> b);

/// Apply a computed superposition to an arbitrary point.
Vec3 apply(const Superposition& s, const Vec3& p);

}  // namespace impeccable::common
