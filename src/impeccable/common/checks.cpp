#include "impeccable/common/checks.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define IMPECCABLE_HAVE_EXECINFO 1
#endif

namespace impeccable::common::checks {

std::uint64_t this_thread_id() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace detail {

void print_backtrace_fd(int fd) {
#ifdef IMPECCABLE_HAVE_EXECINFO
  void* frames[48];
  const int n = backtrace(frames, 48);
  // Skip this frame and fail() itself; symbols go straight to the fd so the
  // abort path performs no heap allocation after the failure was detected.
  backtrace_symbols_fd(frames + 2, n > 2 ? n - 2 : n, fd);
#else
  (void)fd;
#endif
}

}  // namespace detail

void fail(const char* expr, const char* file, int line, const char* func,
          const char* fmt, ...) {
  std::fprintf(stderr,
               "\nIMP_CHECK failed: %s\n  at %s:%d in %s (thread %llu)\n",
               expr, file, line, func,
               static_cast<unsigned long long>(this_thread_id()));
  if (fmt != nullptr) {
    std::va_list ap;
    va_start(ap, fmt);
    std::fputs("  message: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
  }
  std::fputs("  backtrace:\n", stderr);
  std::fflush(stderr);
  detail::print_backtrace_fd(2);
  std::abort();
}

}  // namespace impeccable::common::checks
