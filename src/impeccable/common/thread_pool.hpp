#pragma once
// Work-stealing worker pool + grain-aware parallel_for.
//
// This is the "real compute" execution substrate: ensemble MD replicas,
// GA docking runs, GEMM row panels and NN training batches run as pool jobs,
// mirroring the node-level OpenMP/thread parallelism the paper's engines use
// on Summit.
//
// Architecture (execution engine v2):
//  * one deque per worker (LIFO for the owner — cache-hot, depth-first) plus
//    a global overflow queue for external submitters;
//  * idle workers steal from the FRONT of victim deques (FIFO — oldest,
//    largest-granularity work first) and park on a condvar when the whole
//    pool is empty;
//  * parallel_for is templated on the body (no std::function funneling) and
//    chunk-granular: callers pick a `grain`, workers grab chunks from an
//    atomic dispenser, and the calling thread participates, which makes
//    nested parallel_for from inside a pool task deadlock-free.
//
// Determinism contract: parallel_for(begin, end, body) invokes body(i)
// exactly once per index, regardless of pool size or stealing order. Callers
// that write only to disjoint, index-addressed slots therefore produce
// bit-identical results with 1 or N threads. Exceptions are deterministic
// too: there is no cross-chunk cancellation — every chunk runs, in order, up
// to its own first failing iteration — and the exception thrown from the
// LOWEST failing index overall is the one propagated.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace impeccable::obs {
class MetricsRegistry;
}  // namespace impeccable::obs

namespace impeccable::common {

namespace detail {

/// Shared control block of one parallel_for: an atomic chunk dispenser plus
/// completion tracking. Heap-allocated (shared_ptr) so helper tickets that
/// run after the loop finished can still observe the drained dispenser.
struct PforState {
  std::atomic<std::size_t> next{0};      ///< next chunk start index
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks_total = 0;
  /// Type-erased chunk runner; `fail_at` receives the index being executed
  /// so the catch site knows which iteration threw.
  void (*run_range)(void* ctx, std::size_t lo, std::size_t hi,
                    std::size_t* fail_at) = nullptr;
  void* ctx = nullptr;  ///< the body; only dereferenced while chunks remain

  std::atomic<std::size_t> chunks_done{0};
  std::mutex mu;  ///< guards the exception slot and the completion condvar
  std::condition_variable cv;
  std::exception_ptr first_error;
  std::size_t first_error_index = ~std::size_t{0};
};

template <typename Body>
void run_range_thunk(void* ctx, std::size_t lo, std::size_t hi,
                     std::size_t* fail_at) {
  Body& body = *static_cast<Body*>(ctx);
  for (std::size_t i = lo; i < hi; ++i) {
    *fail_at = i;
    body(i);
  }
}

}  // namespace detail

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job; the returned future reports its value or exception.
  /// Submissions from inside a pool worker go to that worker's own deque
  /// (LIFO); external submissions go to the global overflow queue.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Block until every queued and running job has finished.
  void wait_idle();

  /// Per-worker observability counters (owner-thread writes, relaxed reads):
  /// jobs executed, jobs taken from a victim's deque, and condvar parks.
  struct WorkerCounters {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t parked = 0;
  };
  std::vector<WorkerCounters> worker_counters() const;

  /// Publish aggregate worker counters into an obs metrics registry as
  /// gauges `<prefix>.executed/.stolen/.parked/.workers` (gauges, not
  /// registry counters, so repeated publishes overwrite instead of
  /// double-counting).
  void publish_metrics(obs::MetricsRegistry& metrics,
                       std::string_view prefix = "pool") const;

  /// Stop accepting new jobs, drain what is queued, and join the workers.
  /// Idempotent; the destructor calls it. submit() afterwards throws.
  void shutdown();

  /// Run body(i) for i in [begin, end), blocking until done. Work is handed
  /// out in chunks of `grain` indices (0 = pick automatically, ~8 chunks per
  /// worker); the caller participates, so nesting from inside a pool task is
  /// safe. The first exception (lowest iteration index) propagates.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t grain = 0) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    if (grain == 0) grain = default_grain(n);
    using B = std::remove_reference_t<Body>;
    if (size() <= 1 || n <= grain) {
      // Serial fast path — same chunk runner, same iteration order.
      std::size_t fail_at = begin;
      detail::run_range_thunk<B>(const_cast<void*>(static_cast<const void*>(
                                     std::addressof(body))),
                                 begin, end, &fail_at);
      return;
    }
    auto st = std::make_shared<detail::PforState>();
    st->next.store(begin);
    st->end = end;
    st->grain = grain;
    st->chunks_total = (n + grain - 1) / grain;
    st->ctx = const_cast<void*>(static_cast<const void*>(std::addressof(body)));
    st->run_range = &detail::run_range_thunk<B>;
    run_pfor(st);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> jobs;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> parked{0};
  };

  void enqueue(std::function<void()> job);
  bool try_enqueue(std::function<void()> job);  ///< false once stopping
  void wake_one();
  void finish_one();
  void worker_loop(std::size_t id);
  bool take_any(std::size_t id, std::function<void()>& out, bool* stole);
  bool has_work();
  std::size_t default_grain(std::size_t n) const;

  /// Dispatch helper tickets, drain the dispenser on the calling thread,
  /// wait for in-flight chunks, rethrow the recorded first error.
  void run_pfor(const std::shared_ptr<detail::PforState>& st);
  static void drain_pfor(detail::PforState& st);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::deque<std::function<void()>> global_;
  std::mutex global_mu_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};

  std::atomic<bool> stopping_{false};

  std::atomic<std::size_t> unfinished_{0};  ///< queued + running jobs
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

/// Run body(i) for i in [begin, end) across the pool, blocking until done.
/// Grain-aware and nesting-safe; see ThreadPool::parallel_for.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, std::size_t grain = 0) {
  pool.parallel_for(begin, end, std::forward<Body>(body), grain);
}

}  // namespace impeccable::common
