#pragma once
// Fixed-size worker pool + parallel_for helper.
//
// This is the "real compute" execution substrate: ensemble MD replicas,
// GA docking runs and NN training batches run as pool jobs, mirroring the
// node-level OpenMP/thread parallelism the paper's engines use on Summit.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace impeccable::common {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job; the returned future reports its value or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every queued and running job has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [begin, end) across the pool, blocking until done.
/// Work is split into contiguous chunks, one future per chunk. Exceptions
/// from any chunk propagate to the caller.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace impeccable::common
