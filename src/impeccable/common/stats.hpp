#pragma once
// Descriptive statistics used by the free-energy protocols (ensemble means,
// bootstrap confidence intervals), the ML evaluation (rank correlations) and
// the benchmark harnesses (histograms, percentiles).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace impeccable::common {

double mean(std::span<const double> xs);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Standard error of the mean: stddev / sqrt(n); 0 for n < 2.
double std_error(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Pearson product-moment correlation; 0 if either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> a, std::span<const double> b);

/// Ranks with ties averaged, 1-based (as used by Spearman).
std::vector<double> ranks(std::span<const double> xs);

/// Bootstrap estimate of the standard error of the mean.
/// `resamples` resamples with replacement, seeded for reproducibility.
double bootstrap_std_error(std::span<const double> xs, int resamples,
                           std::uint64_t seed);

/// Flyvbjerg–Petersen block averaging: standard error of the mean of a
/// (possibly autocorrelated) time series, estimated as the maximum naive SEM
/// over successive pairwise block-averaging levels. For i.i.d. data this
/// approaches the plain SEM; for correlated MD observables it is larger.
double block_average_error(std::span<const double> series);

/// 95% bootstrap percentile confidence interval for the mean.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval bootstrap_ci95(std::span<const double> xs, int resamples,
                        std::uint64_t seed);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so totals always equal the input size.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(int bin) const { return counts_[static_cast<std::size_t>(bin)]; }
  std::size_t total() const { return total_; }
  double bin_center(int bin) const;
  double frequency(int bin) const;

  /// Render an aligned text view (one row per bin with a bar), as printed by
  /// the figure-reproduction benches.
  std::string to_text(int bar_width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< unbiased; 0 for n < 2
  double stddev() const;
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace impeccable::common
