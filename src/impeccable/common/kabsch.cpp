#include "impeccable/common/kabsch.hpp"

#include <cmath>
#include <stdexcept>

namespace impeccable::common {
namespace {

/// Jacobi eigen-decomposition of a symmetric 4x4 matrix.
/// Returns the eigenvector of the largest eigenvalue.
std::array<double, 4> max_eigenvector4(std::array<std::array<double, 4>, 4> m) {
  std::array<std::array<double, 4>, 4> v{};
  for (int i = 0; i < 4; ++i) v[i][i] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < 4; ++p)
      for (int q = p + 1; q < 4; ++q) off += m[p][q] * m[p][q];
    if (off < 1e-24) break;
    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) {
        if (std::abs(m[p][q]) < 1e-18) continue;
        const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to m and accumulate in v.
        for (int k = 0; k < 4; ++k) {
          const double mkp = m[k][p], mkq = m[k][q];
          m[k][p] = c * mkp - s * mkq;
          m[k][q] = s * mkp + c * mkq;
        }
        for (int k = 0; k < 4; ++k) {
          const double mpk = m[p][k], mqk = m[q][k];
          m[p][k] = c * mpk - s * mqk;
          m[q][k] = s * mpk + c * mqk;
        }
        for (int k = 0; k < 4; ++k) {
          const double vkp = v[k][p], vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  int best = 0;
  for (int i = 1; i < 4; ++i)
    if (m[i][i] > m[best][best]) best = i;
  return {v[0][best], v[1][best], v[2][best], v[3][best]};
}

Vec3 centroid(std::span<const Vec3> pts) {
  Vec3 c;
  for (const auto& p : pts) c += p;
  return c / static_cast<double>(pts.size());
}

}  // namespace

double rmsd_raw(std::span<const Vec3> a, std::span<const Vec3> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("rmsd_raw: size mismatch or empty");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += distance2(a[i], b[i]);
  return std::sqrt(acc / static_cast<double>(a.size()));
}

Superposition superpose(std::span<const Vec3> a, std::span<const Vec3> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("superpose: size mismatch or empty");
  Superposition out;
  out.centroid_a = centroid(a);
  out.centroid_b = centroid(b);

  // Cross-covariance of centered coordinates.
  double sxx = 0, sxy = 0, sxz = 0, syx = 0, syy = 0, syz = 0, szx = 0, szy = 0, szz = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec3 pa = a[i] - out.centroid_a;
    const Vec3 pb = b[i] - out.centroid_b;
    sxx += pb.x * pa.x; sxy += pb.x * pa.y; sxz += pb.x * pa.z;
    syx += pb.y * pa.x; syy += pb.y * pa.y; syz += pb.y * pa.z;
    szx += pb.z * pa.x; szy += pb.z * pa.y; szz += pb.z * pa.z;
  }

  // Horn's symmetric 4x4 key matrix; its top eigenvector is the optimal
  // rotation quaternion (w, x, y, z).
  std::array<std::array<double, 4>, 4> key{{
      {sxx + syy + szz, syz - szy, szx - sxz, sxy - syx},
      {syz - szy, sxx - syy - szz, sxy + syx, szx + sxz},
      {szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy},
      {sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz},
  }};
  const auto q = max_eigenvector4(key);
  const double w = q[0], x = q[1], y = q[2], z = q[3];

  out.rotation = {{
      {w * w + x * x - y * y - z * z, 2 * (x * y - w * z), 2 * (x * z + w * y)},
      {2 * (x * y + w * z), w * w - x * x + y * y - z * z, 2 * (y * z - w * x)},
      {2 * (x * z - w * y), 2 * (y * z + w * x), w * w - x * x - y * y + z * z},
  }};
  out.translation = out.centroid_a;

  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += distance2(a[i], apply(out, b[i]));
  out.rmsd = std::sqrt(acc / static_cast<double>(a.size()));
  return out;
}

double rmsd_superposed(std::span<const Vec3> a, std::span<const Vec3> b) {
  return superpose(a, b).rmsd;
}

Vec3 apply(const Superposition& s, const Vec3& p) {
  const Vec3 c = p - s.centroid_b;
  const auto& r = s.rotation;
  return Vec3{r[0][0] * c.x + r[0][1] * c.y + r[0][2] * c.z,
              r[1][0] * c.x + r[1][1] * c.y + r[1][2] * c.z,
              r[2][0] * c.x + r[2][1] * c.y + r[2][2] * c.z} +
         s.translation;
}

}  // namespace impeccable::common
