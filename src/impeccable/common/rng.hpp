#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library (library generation, genetic
// algorithms, Langevin thermostats, neural-network initialization, data
// splits) draws from an explicitly seeded Rng so that runs are reproducible
// bit-for-bit across hosts. We deliberately avoid std::mt19937 +
// std::*_distribution because libstdc++/libc++ distributions differ; the
// generators and transforms below are fully specified.

#include <cstdint>
#include <cmath>
#include <cstddef>
#include <vector>

#include "impeccable/common/rng_audit.hpp"

namespace impeccable::common {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush as a 64-bit mixer; recommended by Vigna for seeding.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x19eccab1eULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
#ifdef IMPECCABLE_CHECKS
    // Reseeding starts a fresh stream: the reseeding thread must be the
    // owner (or the stream unowned), and ownership passes to whoever draws
    // next — the same transfer rule audit_handoff() enforces.
    audit_.handoff();
#endif
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
    cached_gauss_valid_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
#ifdef IMPECCABLE_CHECKS
    audit_.on_draw();
#endif
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's unbiased multiply-shift.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    // Rejection loop to remove modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform index in [0, n) as std::size_t.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(n));
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (caches the second deviate).
  double gauss() {
    if (cached_gauss_valid_) {
      cached_gauss_valid_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * m;
    cached_gauss_valid_ = true;
    return u * m;
  }

  /// Normal with given mean and standard deviation.
  double gauss(double mean, double stddev) { return mean + stddev * gauss(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator; used to hand each parallel task
  /// (GA run, MD replica, worker) its own stream from one campaign seed.
  /// The child is unowned until its own first draw, so spawning serially on
  /// a coordinator and drawing in workers needs no handoff.
  Rng spawn() {
    std::uint64_t child_seed = next() ^ 0xd3adb33fcafef00dULL;
    return Rng(child_seed);
  }

  /// Release this stream's audited thread ownership at a deliberate
  /// transfer point (e.g. a serialized merge() that migrates between pool
  /// threads across iterations). The next thread to draw becomes the new
  /// owner. No-op unless built with IMPECCABLE_CHECKS.
  void audit_handoff() {
#ifdef IMPECCABLE_CHECKS
    audit_.handoff();
#endif
  }

  /// Audit tag (see rng_audit.hpp). Present in every build so Rng's layout
  /// never depends on IMPECCABLE_CHECKS; only the next() hook is gated.
  const rng_audit::StreamTag& audit() const { return audit_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_gauss_ = 0.0;
  bool cached_gauss_valid_ = false;
  mutable rng_audit::StreamTag audit_;
};

}  // namespace impeccable::common
