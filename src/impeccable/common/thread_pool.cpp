#include "impeccable/common/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "impeccable/obs/metrics.hpp"
#include "impeccable/obs/recorder.hpp"

namespace impeccable::common {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// submit() from inside a task lands on the local deque.
struct TlsSlot {
  ThreadPool* pool = nullptr;
  std::size_t id = 0;
};
thread_local TlsSlot tls_slot;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard lk(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  if (!try_enqueue(std::move(job)))
    throw std::runtime_error("ThreadPool: submit after stop");
}

bool ThreadPool::try_enqueue(std::function<void()> job) {
  if (stopping_.load()) return false;
  unfinished_.fetch_add(1);
  if (tls_slot.pool == this) {
    Worker& self = *queues_[tls_slot.id];
    std::lock_guard lk(self.mu);
    self.jobs.push_back(std::move(job));
  } else {
    std::lock_guard lk(global_mu_);
    global_.push_back(std::move(job));
  }
  wake_one();
  return true;
}

void ThreadPool::wake_one() {
  if (sleepers_.load() > 0) {
    std::lock_guard lk(sleep_mu_);
    sleep_cv_.notify_one();
  }
}

void ThreadPool::finish_one() {
  if (unfinished_.fetch_sub(1) == 1) {
    std::lock_guard lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

bool ThreadPool::take_any(std::size_t id, std::function<void()>& out,
                          bool* stole) {
  *stole = false;
  // 1. Own deque, back first (LIFO — most recently pushed, cache-hot).
  {
    Worker& self = *queues_[id];
    std::lock_guard lk(self.mu);
    if (!self.jobs.empty()) {
      out = std::move(self.jobs.back());
      self.jobs.pop_back();
      return true;
    }
  }
  // 2. Global overflow queue, front (FIFO).
  {
    std::lock_guard lk(global_mu_);
    if (!global_.empty()) {
      out = std::move(global_.front());
      global_.pop_front();
      return true;
    }
  }
  // 3. Steal from a victim's front (FIFO — oldest, coarsest work).
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *queues_[(id + k) % n];
    std::lock_guard lk(victim.mu);
    if (!victim.jobs.empty()) {
      out = std::move(victim.jobs.front());
      victim.jobs.pop_front();
      *stole = true;
      return true;
    }
  }
  return false;
}

bool ThreadPool::has_work() {
  {
    std::lock_guard lk(global_mu_);
    if (!global_.empty()) return true;
  }
  for (auto& q : queues_) {
    std::lock_guard lk(q->mu);
    if (!q->jobs.empty()) return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  tls_slot = {this, id};
  Worker& self = *queues_[id];
  for (;;) {
    std::function<void()> job;
    bool stole = false;
    if (take_any(id, job, &stole)) {
      self.executed.fetch_add(1, std::memory_order_relaxed);
      if (stole) self.stolen.fetch_add(1, std::memory_order_relaxed);
      if (obs::Recorder* rec = obs::global()) {
        obs::Span span(obs::cat::kPool, stole ? "job-stolen" : "job", rec);
        job();
      } else {
        job();
      }
      job = nullptr;  // release captures before finish_one wakes wait_idle
      finish_one();
      continue;
    }
    std::unique_lock lk(sleep_mu_);
    sleepers_.fetch_add(1);
    // Recheck under sleep_mu_: pairs with try_enqueue's push-then-load so a
    // job published after our failed take_any cannot be missed.
    if (has_work()) {
      sleepers_.fetch_sub(1);
      continue;
    }
    if (stopping_.load()) {
      sleepers_.fetch_sub(1);
      return;  // stopping and fully drained
    }
    self.parked.fetch_add(1, std::memory_order_relaxed);
    sleep_cv_.wait(lk);
    sleepers_.fetch_sub(1);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(idle_mu_);
  idle_cv_.wait(lk, [this] { return unfinished_.load() == 0; });
}

std::vector<ThreadPool::WorkerCounters> ThreadPool::worker_counters() const {
  std::vector<WorkerCounters> out;
  out.reserve(queues_.size());
  for (const auto& q : queues_)
    out.push_back({q->executed.load(std::memory_order_relaxed),
                   q->stolen.load(std::memory_order_relaxed),
                   q->parked.load(std::memory_order_relaxed)});
  return out;
}

void ThreadPool::publish_metrics(obs::MetricsRegistry& metrics,
                                 std::string_view prefix) const {
  WorkerCounters total;
  for (const auto& w : worker_counters()) {
    total.executed += w.executed;
    total.stolen += w.stolen;
    total.parked += w.parked;
  }
  const std::string p(prefix);
  metrics.gauge(p + ".executed").set(static_cast<double>(total.executed));
  metrics.gauge(p + ".stolen").set(static_cast<double>(total.stolen));
  metrics.gauge(p + ".parked").set(static_cast<double>(total.parked));
  metrics.gauge(p + ".workers").set(static_cast<double>(size()));
}

std::size_t ThreadPool::default_grain(std::size_t n) const {
  // Aim for ~8 chunks per worker: enough slack for stealing to balance load,
  // few enough that the per-chunk dispenser cost stays negligible.
  return std::max<std::size_t>(1, n / (8 * std::max<std::size_t>(1, size())));
}

void ThreadPool::drain_pfor(detail::PforState& st) {
  for (;;) {
    const std::size_t lo = st.next.fetch_add(st.grain);
    if (lo >= st.end) break;
    const std::size_t hi = std::min(st.end, lo + st.grain);
    std::size_t fail_at = lo;
    std::exception_ptr err;
    try {
      st.run_range(st.ctx, lo, hi, &fail_at);
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      std::lock_guard lk(st.mu);
      if (fail_at < st.first_error_index) {
        st.first_error_index = fail_at;
        st.first_error = err;
      }
    }
    if (st.chunks_done.fetch_add(1) + 1 == st.chunks_total) {
      std::lock_guard lk(st.mu);
      st.cv.notify_all();
    }
  }
}

void ThreadPool::run_pfor(const std::shared_ptr<detail::PforState>& st) {
  // Helper tickets: bounded by worker count, not chunk count. Each ticket
  // drains the shared dispenser; tickets that run after completion observe
  // an exhausted dispenser and return without touching the (dead) body.
  const std::size_t tickets = std::min(size(), st->chunks_total - 1);
  for (std::size_t t = 0; t < tickets; ++t) {
    if (!try_enqueue([st] { drain_pfor(*st); })) break;  // pool stopping
  }
  drain_pfor(*st);
  {
    std::unique_lock lk(st->mu);
    st->cv.wait(lk, [&] {
      return st->chunks_done.load() == st->chunks_total;
    });
  }
  if (st->first_error) std::rethrow_exception(st->first_error);
}

}  // namespace impeccable::common
