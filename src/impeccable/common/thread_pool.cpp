#include "impeccable/common/thread_pool.hpp"

#include <algorithm>

namespace impeccable::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return active_ == 0 && queue_.empty(); });
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, pool.size() * 4));
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = begin; c < end; c += step) {
    const std::size_t lo = c;
    const std::size_t hi = std::min(end, c + step);
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace impeccable::common
