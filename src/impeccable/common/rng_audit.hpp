#pragma once
// RNG stream-ownership auditor — a lightweight race detector for exactly
// the seed-stream bugs that break science_fingerprint().
//
// The determinism contract (DESIGN.md) is that every Rng stream is drawn by
// ONE logical owner: streams are spawned serially on a coordinating thread
// and each is then consumed by a single task. Two threads interleaving draws
// on one stream produce a schedule-dependent (and therefore
// fingerprint-breaking) sequence, yet the code runs fine — TSan only sees
// it if the draws race in time, and plain tests only see it as a flaky
// fingerprint much later. This auditor catches it at the first wrong draw:
//
//   * each stream's tag records the owning thread at its FIRST draw
//     (checks builds capture the acquisition backtrace too);
//   * a draw by any other thread aborts, printing both contexts — where
//     the stream was acquired and where the foreign draw happened;
//   * an explicit `handoff()` releases ownership, so deliberate transfers
//     (spawn streams on the coordinator, hand each to a worker; or a
//     serialized merge() that moves between pool threads across
//     iterations) are one self-documenting call.
//
// The tag lives in every Rng unconditionally (16 bytes) so that object
// layout never depends on IMPECCABLE_CHECKS; only the on_draw() call in
// Rng::next() is compiled out. Copied or moved-from/into tags reset to
// unowned: a fresh object is a fresh stream instance.

#include <atomic>
#include <cstdint>

namespace impeccable::common::rng_audit {

/// Ownership tag embedded in common::Rng. All operations are thread-safe;
/// the owned-draw fast path is one relaxed load + compare.
class StreamTag {
 public:
  StreamTag() = default;
  ~StreamTag();

  // A copy or move is a new stream instance: ownership does not transfer
  // (the source may legitimately stay with its owner; the destination has
  // not been drawn from yet).
  StreamTag(const StreamTag&) noexcept {}
  StreamTag& operator=(const StreamTag&) noexcept {
    release();
    return *this;
  }

  /// Called on every draw in checks builds. First draw acquires ownership
  /// for the calling thread; a foreign draw aborts with both contexts.
  void on_draw() {
    const std::uint64_t me = cached_thread_id();
    const std::uint64_t cur = owner_.load(std::memory_order_relaxed);
    if (cur == me) return;
    acquire_or_abort(me);
  }

  /// Release ownership: the next thread to draw becomes the new owner.
  /// Must be called by the current owner (or when no draws are in flight,
  /// e.g. between pipeline stages); it is itself checked in checks builds.
  void handoff();

  /// Thread id currently owning the stream; 0 if unowned.
  std::uint64_t owner() const {
    return owner_.load(std::memory_order_relaxed);
  }

 private:
  static std::uint64_t cached_thread_id();
  void acquire_or_abort(std::uint64_t me);
  void release();

  std::atomic<std::uint64_t> owner_{0};
  std::atomic<void*> ctx_{nullptr};  ///< AcquireContext* (checks builds)
};

}  // namespace impeccable::common::rng_audit
