#pragma once
// Minimal 3-vector used throughout the docking and MD substrates.

#include <cmath>
#include <ostream>

namespace impeccable::common {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(double s) { x /= s; y /= s; z /= s; return *this; }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector along *this; returns +x for the zero vector.
  Vec3 normalized() const {
    const double n = norm();
    if (n <= 0.0) return {1.0, 0.0, 0.0};
    return *this / n;
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
inline double distance2(const Vec3& a, const Vec3& b) { return (a - b).norm2(); }

/// Rotate `v` about unit axis `axis` by `angle` radians (Rodrigues formula).
inline Vec3 rotate_about_axis(const Vec3& v, const Vec3& axis, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1.0 - c));
}

}  // namespace impeccable::common
