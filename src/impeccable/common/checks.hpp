#pragma once
// Runtime invariant layer (IMPECCABLE_CHECKS).
//
// Two macro tiers:
//   IMP_CHECK(cond, "fmt", ...)   always compiled. Production invariants —
//                                 the cost of one predictable branch.
//   IMP_DCHECK(cond, "fmt", ...)  compiled only when IMPECCABLE_CHECKS is
//                                 defined (assert-style, per-TU): bounds
//                                 checks on hot accessors, RNG stream
//                                 auditing, anything too hot for release.
//
// Failures print the failed expression, file:line, enclosing function, the
// optional printf-style message, the small per-thread id used across the
// checks layer, and a symbolized backtrace, then abort(). The report goes to
// stderr via fprintf/backtrace_symbols_fd — deliberately NOT std::cerr (see
// tools/lint rule no-iostream-in-lib) and deliberately unbuffered-adjacent:
// the process is about to die, so no obs:: machinery is trusted either.
//
// The IMPECCABLE_CHECKS gate is code-only by design: it must never change
// object layout (common::Rng carries its audit tag unconditionally), so a
// checks-enabled test TU links cleanly against a checks-disabled library —
// the same contract <cassert> has with NDEBUG.

#include <cstdint>

namespace impeccable::common::checks {

/// Small 1-based id for the calling thread, assigned on first use. Stable
/// for the thread's lifetime; used in check-failure and RNG-audit reports
/// because std::thread::id values are unreadable in logs.
std::uint64_t this_thread_id();

/// Print the failure report (expression context + optional message + this
/// thread's backtrace) and abort. `fmt` may be null (no message).
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       const char* func, const char* fmt = nullptr, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 5, 6)))
#endif
    ;

}  // namespace impeccable::common::checks

#define IMP_CHECK(cond, ...)                                            \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::impeccable::common::checks::fail(#cond, __FILE__, __LINE__,  \
                                            __func__ __VA_OPT__(, )     \
                                                __VA_ARGS__))

#ifdef IMPECCABLE_CHECKS
#define IMP_DCHECK(cond, ...) IMP_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
// Unevaluated operand: no codegen, but variables referenced only by the
// check do not trip -Wunused under -Werror.
#define IMP_DCHECK(cond, ...) static_cast<void>(sizeof(!(cond)))
#endif
