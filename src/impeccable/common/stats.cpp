#include "impeccable/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "impeccable/common/rng.hpp"

namespace impeccable::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(n - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double std_error(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= xs.size()) return xs.back();
  return xs[i] * (1.0 - frac) + xs[i + 1] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("pearson: size mismatch");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> rk(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank over the tie block [i, j]; ranks are 1-based.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rk[order[k]] = avg;
    i = j + 1;
  }
  return rk;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("spearman: size mismatch");
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  return pearson(ra, rb);
}

double bootstrap_std_error(std::span<const double> xs, int resamples,
                           std::uint64_t seed) {
  if (xs.size() < 2 || resamples < 2) return 0.0;
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[rng.index(xs.size())];
    means.push_back(acc / static_cast<double>(xs.size()));
  }
  return stddev(means);
}

double block_average_error(std::span<const double> series) {
  std::vector<double> blocks(series.begin(), series.end());
  double best = std_error(blocks);
  while (blocks.size() >= 4) {
    std::vector<double> next;
    next.reserve(blocks.size() / 2);
    for (std::size_t i = 0; i + 1 < blocks.size(); i += 2)
      next.push_back(0.5 * (blocks[i] + blocks[i + 1]));
    blocks = std::move(next);
    best = std::max(best, std_error(blocks));
  }
  return best;
}

Interval bootstrap_ci95(std::span<const double> xs, int resamples,
                        std::uint64_t seed) {
  if (xs.empty()) return {};
  if (xs.size() == 1 || resamples < 2) return {xs[0], xs[0]};
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[rng.index(xs.size())];
    means.push_back(acc / static_cast<double>(xs.size()));
  }
  return {percentile(means, 2.5), percentile(means, 97.5)};
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (bins <= 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  long bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(int bin) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * w;
}

double Histogram::frequency(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_text(int bar_width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (int b = 0; b < bins(); ++b) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%10.3f  %8zu  ", bin_center(b), count(b));
    os << buf;
    const int len = static_cast<int>(
        static_cast<double>(count(b)) / static_cast<double>(peak) * bar_width);
    for (int i = 0; i < len; ++i) os << '#';
    os << '\n';
  }
  return os.str();
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace impeccable::common
