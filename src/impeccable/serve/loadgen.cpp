#include "impeccable/serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "impeccable/chem/library.hpp"
#include "impeccable/chem/ligand_source.hpp"
#include "impeccable/common/rng.hpp"
#include "impeccable/obs/metrics.hpp"

namespace impeccable::serve {

namespace {

/// Microsecond-latency histogram layout: 1 us .. 10 s, 6 buckets/decade.
const obs::HistogramSpec kLatencySpec{1.0, 1e7, 42};

LoadReport finish_report(const obs::Histogram& hist, double duration_s,
                         std::size_t issued, std::size_t completed,
                         std::size_t shed) {
  LoadReport r;
  r.duration_s = duration_s;
  r.issued = issued;
  r.completed = completed;
  r.shed = shed;
  if (duration_s > 0.0) {
    r.offered_rps = static_cast<double>(issued) / duration_s;
    r.achieved_rps = static_cast<double>(completed) / duration_s;
  }
  const auto snap = hist.snapshot();
  if (snap.count > 0) {
    r.p50_us = hist.quantile(0.50);
    r.p95_us = hist.quantile(0.95);
    r.p99_us = hist.quantile(0.99);
    r.mean_us = snap.sum / static_cast<double>(snap.count);
    r.max_us = snap.max;
  }
  return r;
}

}  // namespace

Workload make_workload(const WorkloadOptions& opts) {
  Workload w;
  const std::size_t uniques = std::max<std::size_t>(1, opts.unique_ligands);
  // Library access goes through the LigandSource abstraction (the campaign
  // engine's data path), not hand-rolled parse/depict over raw entries.
  chem::SourceOptions sopts;
  sopts.depiction.channels = opts.channels;
  sopts.depiction.height = opts.height;
  sopts.depiction.width = opts.width;
  const chem::InMemorySource source(
      chem::generate_library("SRV", uniques, opts.seed), sopts);
  w.unique.reserve(source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    Request req;
    req.image = source.image(i);
    // Key on the depiction digest: it is exactly the content the model
    // consumes, so identical keys imply identical CNN inputs — the cache
    // can never alias two ligands the model would score differently.
    req.key = key_of(req.image);
    w.unique.push_back(std::move(req));
  }

  const std::size_t hot =
      std::min(std::max<std::size_t>(1, opts.hot_set), w.unique.size());
  common::Rng rng(opts.seed ^ 0x10adc11e47ULL);
  w.stream.reserve(opts.stream_length);
  for (std::size_t i = 0; i < opts.stream_length; ++i) {
    const bool repeat = rng.bernoulli(opts.repeat_fraction);
    w.stream.push_back(repeat ? rng.index(hot) : rng.index(w.unique.size()));
  }
  return w;
}

LoadReport run_closed_loop(InferenceServer& server, const std::string& target,
                           const Workload& workload,
                           const ClosedLoopOptions& opts) {
  const int clients = std::max(1, opts.clients);
  const std::size_t per_client = std::max<std::size_t>(1, opts.requests_per_client);
  obs::Histogram hist(kLatencySpec);
  std::atomic<std::size_t> completed{0}, shed{0};

  const double start = server.now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (std::size_t k = 0; k < per_client; ++k) {
        const std::size_t at =
            static_cast<std::size_t>(c) * per_client + k;
        Request req = workload.at(at);  // copy: the server consumes images
        const double t0 = server.now();
        const Response resp = server.submit(target, std::move(req)).get();
        if (resp.status == Status::kOk) {
          hist.observe((server.now() - t0) * 1e6);
          completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const double duration = server.now() - start;

  return finish_report(hist, duration,
                       static_cast<std::size_t>(clients) * per_client,
                       completed.load(), shed.load());
}

LoadReport run_open_loop(InferenceServer& server, const std::string& target,
                         const Workload& workload,
                         const OpenLoopOptions& opts) {
  const std::size_t n = std::max<std::size_t>(1, opts.requests);
  const double rps = std::max(1.0, opts.offered_rps);
  obs::Histogram hist(kLatencySpec);

  struct Issued {
    std::future<Response> fut;
    double scheduled;  ///< server-clock send time (latency baseline)
  };
  std::vector<Issued> inflight;
  inflight.reserve(n);

  const auto start_tp = std::chrono::steady_clock::now();
  const double start = server.now();
  for (std::size_t k = 0; k < n; ++k) {
    const double offset_s = static_cast<double>(k) / rps;
    std::this_thread::sleep_until(
        start_tp + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(offset_s)));
    Request req = workload.at(k);
    inflight.push_back({server.submit(target, std::move(req)), start + offset_s});
  }

  std::size_t completed = 0, shed = 0;
  for (auto& issued : inflight) {
    const Response resp = issued.fut.get();
    if (resp.status == Status::kOk) {
      // Scheduled-time baseline: queueing delay from dispatcher lag counts
      // against the server, not the client (no coordinated omission).
      hist.observe(std::max(0.0, resp.done_time - issued.scheduled) * 1e6);
      ++completed;
    } else {
      ++shed;
    }
  }
  const double duration = server.now() - start;
  return finish_report(hist, duration, n, completed, shed);
}

}  // namespace impeccable::serve
