#pragma once
// Synthetic client workloads for the inference service.
//
// Two canonical load shapes from the inference-serving literature drive
// serve::InferenceServer and report the latency/throughput curves the
// ROADMAP asks for:
//
//  * Closed loop — N clients, each submit -> wait -> repeat. Offered load
//    self-clocks to service capacity; measures end-to-end latency under
//    backpressure and the server's peak sustainable throughput.
//  * Open loop — requests dispatched on a fixed schedule at `offered_rps`
//    regardless of completions (arrival process independent of service
//    process). Latency is measured from the *scheduled* arrival time, so
//    dispatcher lag cannot hide queueing delay (no coordinated omission),
//    and overload behavior (bounded p99 via shedding, or queue growth) is
//    observable.
//
// The ligand stream is generated deterministically from a seed: a pool of
// `unique_ligands` synthetic molecules (chem::generate_library) with
// depictions and fingerprint cache keys, sampled so that a request re-visits
// a small hot set with probability `repeat_fraction` — the knob behind the
// "90%-repeat workload" cache acceptance. Only the *timing* of a run is
// host-dependent; the request content never is.
//
// Latency aggregation uses obs::Histogram (log-spaced, thread-safe) and its
// quantile() estimator for p50/p95/p99.

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "impeccable/serve/server.hpp"

namespace impeccable::serve {

struct WorkloadOptions {
  std::size_t unique_ligands = 128;  ///< distinct molecules in the pool
  std::size_t stream_length = 1024;  ///< precomputed request stream size
  /// Probability a request is drawn from the hot set (repeats) instead of
  /// uniformly from the whole pool. 0 = (mostly) all-unique traffic.
  double repeat_fraction = 0.0;
  std::size_t hot_set = 16;  ///< size of the frequently-revisited subset
  std::uint64_t seed = 0x5eed5e7fULL;
  /// Depiction geometry; must match the registered model's SurrogateOptions.
  int channels = 4, height = 32, width = 32;
};

/// A materialized request stream: request i scores unique[stream[i]].
struct Workload {
  std::vector<Request> unique;
  std::vector<std::size_t> stream;

  const Request& at(std::size_t i) const {
    return unique[stream[i % stream.size()]];
  }
};

Workload make_workload(const WorkloadOptions& opts);

/// One load run's aggregate outcome. Latencies are in microseconds of
/// server clock; quantiles come from a log-spaced obs::Histogram (bucket
/// resolution ~18%).
struct LoadReport {
  double duration_s = 0.0;
  std::size_t issued = 0;
  std::size_t completed = 0;  ///< scored OK
  std::size_t shed = 0;       ///< rejected by admission control
  double offered_rps = 0.0;   ///< issued / duration (closed loop: achieved)
  double achieved_rps = 0.0;  ///< completed / duration
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;
};

struct ClosedLoopOptions {
  int clients = 4;
  std::size_t requests_per_client = 256;
};

/// Run `clients` submit->wait loops against `target`, interleaving the
/// workload stream across clients. Blocks until every client finishes.
LoadReport run_closed_loop(InferenceServer& server, const std::string& target,
                           const Workload& workload,
                           const ClosedLoopOptions& opts);

struct OpenLoopOptions {
  double offered_rps = 500.0;
  std::size_t requests = 512;
};

/// Dispatch `requests` on a fixed 1/offered_rps schedule (catching up
/// without skipping when the dispatcher falls behind), then harvest every
/// future. Latency for request k = completion time - scheduled time.
LoadReport run_open_loop(InferenceServer& server, const std::string& target,
                         const Workload& workload, const OpenLoopOptions& opts);

}  // namespace impeccable::serve
