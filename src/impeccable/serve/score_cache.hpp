#pragma once
// Sharded fingerprint -> score cache for the inference service.
//
// The ML1 surrogate screens libraries where the same ligand arrives many
// times (overlapping vendor libraries, Sec. 7.1; re-scored leads across
// campaign iterations). A cache in front of SurrogateModel::predict_batch
// turns those repeats into lookups that cost ~100 ns instead of a CNN
// forward. Keys are 128-bit content digests of the ligand fingerprint (or
// depiction image), so two requests collide only if their content hashes
// collide; scores served from the cache are the bitwise-identical floats
// the model produced on first sight.
//
// Concurrency: the table is split into N independently-locked shards
// (shard = key.hi mod N). Threads touching different shards never contend;
// within a shard an exact LRU is maintained (intrusive recency list +
// ordered map). Hit/miss/insert/evict counters are kept per shard under the
// same lock and aggregated by stats().

#include <cstdint>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "impeccable/chem/depiction.hpp"
#include "impeccable/chem/fingerprint.hpp"

namespace impeccable::serve {

/// 128-bit content digest used as the cache key. Value type, totally
/// ordered so shards can use deterministic ordered maps.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
  friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
};

/// Digest of a molecular fingerprint (the canonical ligand identity used by
/// the serving layer — chem::morgan_fingerprint of the request molecule).
CacheKey key_of(const chem::BitSet& fingerprint);
/// Digest of a depiction image (exact featurization identity: two requests
/// share a key iff their CNN inputs are byte-identical).
CacheKey key_of(const chem::Image& image);

struct CacheOptions {
  int shards = 8;               ///< independently-locked partitions
  std::size_t capacity = 4096;  ///< total entries across shards; 0 disables
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;    ///< resident entries
  std::size_t shards = 0;  ///< shard count (0 when disabled)
};

class ShardedScoreCache {
 public:
  explicit ShardedScoreCache(const CacheOptions& opts = {});

  /// False when constructed with capacity 0: lookups miss, inserts drop.
  bool enabled() const { return !shards_.empty(); }

  /// Score for `key` if resident (refreshes its recency), else nullopt.
  std::optional<float> lookup(const CacheKey& key);

  /// Insert (or refresh) `key`; evicts the shard's LRU entry at capacity.
  void insert(const CacheKey& key, float score);

  /// Aggregated over all shards; consistent per shard, not across shards.
  CacheStats stats() const;

  /// Which shard owns `key` (stable; exposed for shard-independence tests).
  int shard_of(const CacheKey& key) const;
  std::size_t shard_capacity() const { return per_shard_capacity_; }

 private:
  struct Shard {
    std::mutex mu;
    /// Most-recently-used at the front; back is the eviction victim.
    std::list<CacheKey> recency;
    std::map<CacheKey, std::pair<float, std::list<CacheKey>::iterator>>
        entries;
    std::uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace impeccable::serve
