#include "impeccable/serve/score_cache.hpp"

#include <algorithm>
#include <cstring>

namespace impeccable::serve {

namespace {

/// SplitMix64-style finalizer: full-avalanche 64-bit mixing step.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Two independent 64-bit lanes over a word stream -> one 128-bit digest.
/// Each lane absorbs (word ^ position-salt) through the mixer with a
/// distinct initial state, so the lanes decorrelate and a collision needs
/// both 64-bit hashes to collide at once.
CacheKey digest(const std::uint64_t* words, std::size_t n,
                std::uint64_t salt) {
  CacheKey k{0x9e3779b97f4a7c15ULL ^ salt, 0xc2b2ae3d27d4eb4fULL ^ salt};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w = words[i] + 0x9e3779b97f4a7c15ULL * (i + 1);
    k.hi = mix64(k.hi ^ w);
    k.lo = mix64(k.lo + (w ^ 0xa5a5a5a5a5a5a5a5ULL));
  }
  k.hi = mix64(k.hi ^ n);
  k.lo = mix64(k.lo ^ (n << 1));
  return k;
}

}  // namespace

CacheKey key_of(const chem::BitSet& fingerprint) {
  const auto& w = fingerprint.words();
  return digest(w.data(), w.size(),
                static_cast<std::uint64_t>(fingerprint.size()));
}

CacheKey key_of(const chem::Image& image) {
  // Hash the float planes as raw little-endian words; depictions are
  // deterministic, so byte-identical images produce identical keys.
  std::vector<std::uint64_t> words((image.data.size() * sizeof(float) + 7) / 8,
                                   0);
  if (!image.data.empty())
    std::memcpy(words.data(), image.data.data(),
                image.data.size() * sizeof(float));
  const std::uint64_t salt =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(image.channels))
       << 42) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(image.height))
       << 21) ^
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(image.width));
  return digest(words.data(), words.size(), salt);
}

ShardedScoreCache::ShardedScoreCache(const CacheOptions& opts) {
  if (opts.capacity == 0) return;  // disabled
  const int n = std::max(1, opts.shards);
  // Every shard holds at least one entry so a tiny capacity still caches.
  per_shard_capacity_ =
      std::max<std::size_t>(1, opts.capacity / static_cast<std::size_t>(n));
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

int ShardedScoreCache::shard_of(const CacheKey& key) const {
  return static_cast<int>(key.hi % shards_.size());
}

std::optional<float> ShardedScoreCache::lookup(const CacheKey& key) {
  if (!enabled()) return std::nullopt;
  Shard& s = *shards_[static_cast<std::size_t>(shard_of(key))];
  std::lock_guard lk(s.mu);
  const auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    ++s.misses;
    return std::nullopt;
  }
  ++s.hits;
  s.recency.splice(s.recency.begin(), s.recency, it->second.second);
  return it->second.first;
}

void ShardedScoreCache::insert(const CacheKey& key, float score) {
  if (!enabled()) return;
  Shard& s = *shards_[static_cast<std::size_t>(shard_of(key))];
  std::lock_guard lk(s.mu);
  if (const auto it = s.entries.find(key); it != s.entries.end()) {
    // Refresh: the score for a key is immutable (same content -> same
    // model output), so only the recency moves.
    s.recency.splice(s.recency.begin(), s.recency, it->second.second);
    return;
  }
  if (s.entries.size() >= per_shard_capacity_) {
    s.entries.erase(s.recency.back());
    s.recency.pop_back();
    ++s.evictions;
  }
  s.recency.push_front(key);
  s.entries.emplace(key, std::make_pair(score, s.recency.begin()));
  ++s.insertions;
}

CacheStats ShardedScoreCache::stats() const {
  CacheStats out;
  out.shards = shards_.size();
  for (const auto& sp : shards_) {
    std::lock_guard lk(sp->mu);
    out.hits += sp->hits;
    out.misses += sp->misses;
    out.insertions += sp->insertions;
    out.evictions += sp->evictions;
    out.size += sp->entries.size();
  }
  return out;
}

}  // namespace impeccable::serve
