#include "impeccable/serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "impeccable/obs/metrics.hpp"
#include "impeccable/obs/recorder.hpp"

namespace impeccable::serve {

namespace {

std::chrono::steady_clock::duration to_duration(double microseconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::micro>(std::max(0.0, microseconds)));
}

}  // namespace

InferenceServer::InferenceServer(const ServeOptions& opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
  opts_.max_batch = std::max(1, opts_.max_batch);
  opts_.min_batch = std::clamp(opts_.min_batch, 1, opts_.max_batch);
  opts_.queue_capacity = std::max<std::size_t>(1, opts_.queue_capacity);
}

InferenceServer::~InferenceServer() { shutdown(); }

double InferenceServer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void InferenceServer::register_target(
    const std::string& id, std::unique_ptr<ml::SurrogateModel> model) {
  if (!model)
    throw std::invalid_argument("InferenceServer::register_target: null model");
  if (stopping_.load())
    throw std::logic_error(
        "InferenceServer::register_target: server is shut down");
  auto target = std::make_unique<Target>();
  target->id = id;
  target->model = std::move(model);
  target->cache = ShardedScoreCache(opts_.cache);
  // Optimistic start: full batches until observed latency says otherwise
  // (the deadline bounds latency either way).
  target->flush_threshold = opts_.max_batch;

  std::unique_lock lk(registry_mu_);
  const auto [it, inserted] = targets_.try_emplace(id, std::move(target));
  if (!inserted)
    throw std::invalid_argument(
        "InferenceServer::register_target: duplicate target '" + id + "'");
  Target& t = *it->second;
  t.worker = std::thread([this, &t] { worker_loop(t); });
}

std::vector<std::string> InferenceServer::targets() const {
  std::shared_lock lk(registry_mu_);
  std::vector<std::string> out;
  out.reserve(targets_.size());
  for (const auto& [id, t] : targets_) out.push_back(id);
  return out;
}

std::future<Response> InferenceServer::submit(const std::string& target,
                                              Request req) {
  Target* t = nullptr;
  {
    std::shared_lock lk(registry_mu_);
    const auto it = targets_.find(target);
    if (it == targets_.end())
      throw std::out_of_range("InferenceServer::submit: unknown target '" +
                              target + "'");
    t = it->second.get();  // Target storage is stable under the unique_ptr
  }

  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  std::unique_lock lk(t->mu);
  ++t->submitted;
  auto shed_now = [&] {
    ++t->shed;
    promise.set_value({0.0f, Status::kShed, now()});
  };
  if (stopping_.load()) {
    shed_now();
    return fut;
  }
  if (t->queue.size() >= opts_.queue_capacity) {
    if (opts_.admission == AdmissionPolicy::kShed) {
      shed_now();
      return fut;
    }
    t->space_cv.wait(lk, [&] {
      return stopping_.load() || t->queue.size() < opts_.queue_capacity;
    });
    if (stopping_.load()) {
      shed_now();
      return fut;
    }
  }
  t->queue.push_back({std::move(req), std::move(promise),
                      std::chrono::steady_clock::now()});
  lk.unlock();
  t->cv.notify_one();
  return fut;
}

float InferenceServer::score(const std::string& target, Request req) {
  const Response r = submit(target, std::move(req)).get();
  if (r.status != Status::kOk)
    throw std::runtime_error("InferenceServer::score: request shed on '" +
                             target + "'");
  return r.score;
}

void InferenceServer::pause() { paused_.store(true); }

void InferenceServer::resume() {
  paused_.store(false);
  std::shared_lock lk(registry_mu_);
  for (const auto& [id, t] : targets_) t->cv.notify_all();
}

void InferenceServer::worker_loop(Target& t) {
  std::unique_lock lk(t.mu);
  for (;;) {
    t.cv.wait(lk, [&] {
      return stopping_.load() || (!paused_.load() && !t.queue.empty());
    });
    if (stopping_.load()) break;

    // Deadline-aware coalescing: sleep until the adaptive flush threshold
    // fills or the oldest queued request exhausts its latency budget.
    const auto deadline = t.queue.front().enqueued + to_duration(opts_.deadline_us);
    const auto threshold = static_cast<std::size_t>(t.flush_threshold);
    t.cv.wait_until(lk, deadline, [&] {
      return stopping_.load() || paused_.load() || t.queue.size() >= threshold;
    });
    if (stopping_.load()) break;
    if (paused_.load() || t.queue.empty()) continue;

    const std::size_t take =
        std::min(t.queue.size(), static_cast<std::size_t>(opts_.max_batch));
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(t.queue.front()));
      t.queue.pop_front();
    }
    if (opts_.admission == AdmissionPolicy::kBlock) t.space_cv.notify_all();
    lk.unlock();

    const BatchResult result = process_batch(t, batch);

    lk.lock();
    ++t.batches;
    if (!result.error) t.completed += batch.size();
    t.model_images += result.model_images;
    if (result.model_images > 0) {
      const double per_image_us = result.model_seconds * 1e6 /
                                  static_cast<double>(result.model_images);
      t.ewma_image_us = t.ewma_image_us <= 0.0
                            ? per_image_us
                            : 0.7 * t.ewma_image_us + 0.3 * per_image_us;
      if (opts_.adaptive_batching) {
        // Size the next flush so its model time fits the deadline budget.
        const double budget_us =
            opts_.deadline_us * std::max(0.0, opts_.batch_budget_fraction);
        const double want = budget_us / std::max(t.ewma_image_us, 1e-3);
        t.flush_threshold =
            std::clamp(static_cast<int>(want), opts_.min_batch, opts_.max_batch);
      }
    }
    lk.unlock();

    // Fulfill only after the counters absorbed the batch: a caller whose
    // future resolved can rely on stats() including its request.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (result.error)
        batch[i].promise.set_exception(result.error);
      else
        batch[i].promise.set_value(result.responses[i]);
    }
    lk.lock();
  }
  // Shutdown: resolve whatever never flushed so no future dangles.
  while (!t.queue.empty()) {
    Pending p = std::move(t.queue.front());
    t.queue.pop_front();
    ++t.shed;
    p.promise.set_value({0.0f, Status::kShed, now()});
  }
  t.space_cv.notify_all();
}

InferenceServer::BatchResult InferenceServer::process_batch(
    Target& t, std::vector<Pending>& batch) {
  obs::Span span(obs::cat::kServe, "serve-batch", obs::global(), 0);
  span.arg("target", t.id);
  span.arg("requests", static_cast<double>(batch.size()));
  BatchResult out;
  try {
    std::vector<float> scores(batch.size(), 0.0f);
    std::vector<std::size_t> miss;  ///< batch indices the cache cannot serve
    /// key -> slot in `images`; duplicates inside one batch run once.
    std::map<CacheKey, std::size_t> unique_misses;
    std::vector<chem::Image> images;
    std::vector<std::size_t> image_slot(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (const auto hit = t.cache.lookup(batch[i].req.key)) {
        scores[i] = *hit;
        continue;
      }
      const auto [it, inserted] =
          unique_misses.try_emplace(batch[i].req.key, images.size());
      if (inserted) images.push_back(std::move(batch[i].req.image));
      image_slot[i] = it->second;
      miss.push_back(i);
    }

    std::vector<float> model_out;
    if (!images.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      model_out = t.model->predict_batch(images);
      out.model_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
    for (const std::size_t i : miss) scores[i] = model_out[image_slot[i]];
    for (const auto& [key, slot] : unique_misses)
      t.cache.insert(key, model_out[slot]);

    const double done = now();
    out.responses.reserve(batch.size());
    for (const float s : scores) out.responses.push_back({s, Status::kOk, done});
    out.model_images = images.size();

    span.arg("model_images", static_cast<double>(images.size()));
    if (obs::Recorder* rec = obs::global()) {
      auto& m = rec->metrics();
      m.counter("serve.batches").add(1);
      m.counter("serve.requests").add(batch.size());
      m.counter("serve.model_images").add(images.size());
      m.histogram("serve.batch_requests", {1.0, 4096.0, 36})
          .observe(static_cast<double>(batch.size()));
      if (!images.empty())
        m.histogram("serve.model_us", {1.0, 1e7, 42})
            .observe(out.model_seconds * 1e6);
    }
  } catch (...) {
    // A failed forward (e.g. image/architecture shape mismatch) fails the
    // whole flush: every caller sees the error, the worker survives.
    out.error = std::current_exception();
  }
  return out;
}

TargetStats InferenceServer::stats(const std::string& target) const {
  std::shared_lock rlk(registry_mu_);
  const auto it = targets_.find(target);
  if (it == targets_.end())
    throw std::out_of_range("InferenceServer::stats: unknown target '" +
                            target + "'");
  const Target& t = *it->second;
  TargetStats out;
  std::lock_guard lk(t.mu);
  out.submitted = t.submitted;
  out.completed = t.completed;
  out.shed = t.shed;
  out.batches = t.batches;
  out.model_images = t.model_images;
  out.cache = t.cache.stats();
  out.queue_depth = t.queue.size();
  out.flush_threshold = t.flush_threshold;
  out.ewma_image_us = t.ewma_image_us;
  return out;
}

void InferenceServer::publish_metrics(obs::MetricsRegistry& metrics,
                                      std::string_view prefix) const {
  for (const std::string& id : targets()) {
    const TargetStats s = stats(id);
    const std::string base = std::string(prefix) + "." + id + ".";
    metrics.gauge(base + "submitted").set(static_cast<double>(s.submitted));
    metrics.gauge(base + "completed").set(static_cast<double>(s.completed));
    metrics.gauge(base + "shed").set(static_cast<double>(s.shed));
    metrics.gauge(base + "batches").set(static_cast<double>(s.batches));
    metrics.gauge(base + "model_images")
        .set(static_cast<double>(s.model_images));
    metrics.gauge(base + "cache_hits").set(static_cast<double>(s.cache.hits));
    metrics.gauge(base + "cache_misses")
        .set(static_cast<double>(s.cache.misses));
    metrics.gauge(base + "cache_evictions")
        .set(static_cast<double>(s.cache.evictions));
    metrics.gauge(base + "queue_depth")
        .set(static_cast<double>(s.queue_depth));
    metrics.gauge(base + "flush_threshold")
        .set(static_cast<double>(s.flush_threshold));
    metrics.gauge(base + "ewma_image_us").set(s.ewma_image_us);
  }
}

void InferenceServer::shutdown() {
  stopping_.store(true);
  std::vector<Target*> all;
  {
    std::shared_lock lk(registry_mu_);
    for (const auto& [id, t] : targets_) all.push_back(t.get());
  }
  for (Target* t : all) {
    // Acquire each target's mutex once after the store: any submitter that
    // locks it afterwards is guaranteed to observe stopping_ == true.
    { std::lock_guard lk(t->mu); }
    t->cv.notify_all();
    t->space_cv.notify_all();
  }
  for (Target* t : all)
    if (t->worker.joinable()) t->worker.join();
}

}  // namespace impeccable::serve
