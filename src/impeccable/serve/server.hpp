#pragma once
// serve::InferenceServer — screening as a service.
//
// The paper runs ML1 as a campaign stage: score a chunk, move on. At the
// "millions of users" scale the surrogate is better run as a long-lived
// service (Clyde et al., arXiv 2106.07036): callers submit single ligands
// and the server amortizes them into model-sized batches. This is that
// front-end, in-process:
//
//  * Dynamic micro-batching. Per target, a worker coalesces queued
//    requests and flushes when either the adaptive batch target fills or
//    the oldest request has waited `deadline_us` — so light load pays at
//    most one deadline of latency and heavy load runs at full batch
//    efficiency. The batch target tracks observed per-image model latency
//    (EWMA) so `batch_budget_fraction` of the deadline is spent computing.
//
//  * Sharded score cache. Requests carry a 128-bit content key; hits are
//    served from serve::ShardedScoreCache without touching the model, and
//    duplicate keys inside one batch run the model once. Served floats are
//    bitwise identical to a direct predict_batch.
//
//  * Admission control. Each target's queue has a capacity watermark.
//    kBlock applies backpressure (submit blocks until space: closed-loop
//    callers self-clock), kShed fails fast with Status::kShed so open-loop
//    overload keeps a bounded p99 instead of an unbounded queue.
//
//  * Per-target model registry. Each registered target id owns one
//    SurrogateModel, one cache, one queue and one worker thread; batching
//    never mixes targets.
//
// Clocking: all timing uses a steady monotonic clock relative to server
// construction (now(), seconds) — never the wall clock. Batches emit
// obs::Span(cat::kServe) records and per-batch histograms into the global
// recorder when one is installed; publish_metrics() snapshots counters
// into any obs::MetricsRegistry.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "impeccable/ml/surrogate.hpp"
#include "impeccable/serve/score_cache.hpp"

namespace impeccable::obs {
class MetricsRegistry;
}  // namespace impeccable::obs

namespace impeccable::serve {

enum class AdmissionPolicy {
  kBlock,  ///< submit() waits for queue space (caller backpressure)
  kShed,   ///< submit() fails fast with Status::kShed above the watermark
};

struct ServeOptions {
  int max_batch = 64;  ///< hard cap on requests per model forward
  int min_batch = 1;   ///< adaptive floor
  /// Latency budget: a queued request is flushed no later than this many
  /// microseconds after the oldest request in its batch was enqueued.
  double deadline_us = 2000.0;
  /// Admission watermark: queued (not yet flushed) requests per target.
  std::size_t queue_capacity = 1024;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Adapt the flush threshold from observed model latency; when off the
  /// threshold is pinned at max_batch.
  bool adaptive_batching = true;
  /// Fraction of deadline_us the adaptive batch aims to spend in the model.
  double batch_budget_fraction = 0.5;
  CacheOptions cache;  ///< capacity 0 disables the score cache
};

enum class Status {
  kOk,
  kShed,  ///< rejected by admission control (or server shutdown/unregister)
};

struct Response {
  float score = 0.0f;
  Status status = Status::kOk;
  /// Server clock (now(), seconds) when the score was produced. Open-loop
  /// clients compute latency as done_time - scheduled send time without a
  /// per-request waiter thread.
  double done_time = 0.0;
};

struct Request {
  CacheKey key;       ///< content digest (see serve::key_of)
  chem::Image image;  ///< CNN input, SurrogateOptions-shaped
};

/// Per-target service counters (monotonic since registration).
struct TargetStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< scored OK (cache or model)
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;       ///< model flushes (cache-only included)
  std::uint64_t model_images = 0;  ///< images actually run through the CNN
  CacheStats cache;
  std::size_t queue_depth = 0;  ///< at snapshot time
  int flush_threshold = 0;      ///< current adaptive batch target
  double ewma_image_us = 0.0;   ///< smoothed per-image model latency
};

class InferenceServer {
 public:
  explicit InferenceServer(const ServeOptions& opts = {});
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Register `id` and start its worker. Takes ownership of the model
  /// (must be trained/loaded already; the server never calls train()).
  /// Throws std::invalid_argument on a duplicate id or null model.
  void register_target(const std::string& id,
                       std::unique_ptr<ml::SurrogateModel> model);
  std::vector<std::string> targets() const;

  /// Queue one ligand for `target`. The future resolves with its score (or
  /// Status::kShed under kShed admission when the queue is above the
  /// watermark). Under kBlock this call blocks while the queue is full.
  /// Throws std::out_of_range for an unknown target.
  std::future<Response> submit(const std::string& target, Request req);

  /// Synchronous convenience: submit + wait; throws std::runtime_error if
  /// the request was shed.
  float score(const std::string& target, Request req);

  /// Stop draining queues (admission control stays live, so paused servers
  /// make watermark behavior deterministic — used by tests and drains).
  void pause();
  void resume();

  /// Seconds since server construction on a steady monotonic clock.
  double now() const;

  const ServeOptions& options() const { return opts_; }
  TargetStats stats(const std::string& target) const;

  /// Snapshot counters into gauges "<prefix>.<target>.submitted" etc.
  /// (gauges so repeated publishes overwrite instead of double-counting,
  /// matching ThreadPool::publish_metrics).
  void publish_metrics(obs::MetricsRegistry& metrics,
                       std::string_view prefix = "serve") const;

  /// Stop workers; queued-but-unflushed requests resolve as Status::kShed.
  /// Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Target {
    std::string id;
    std::unique_ptr<ml::SurrogateModel> model;
    ShardedScoreCache cache;

    mutable std::mutex mu;  ///< guards queue, stats fields, and the cvs below
    std::condition_variable cv;        ///< worker wakeup
    std::condition_variable space_cv;  ///< blocked submitters (kBlock)
    std::deque<Pending> queue;
    std::thread worker;

    // Guarded by mu (worker updates between flushes, stats() reads).
    std::uint64_t submitted = 0, completed = 0, shed = 0;
    std::uint64_t batches = 0, model_images = 0;
    int flush_threshold = 1;
    double ewma_image_us = 0.0;
  };

  /// Outcome of scoring one drained batch. Promises are fulfilled by the
  /// worker only after the target's counters absorbed the batch, so a
  /// caller that observed its future resolve also observes stats() that
  /// include its request.
  struct BatchResult {
    std::vector<Response> responses;  ///< parallel to the batch
    std::size_t model_images = 0;     ///< images actually run through the CNN
    double model_seconds = 0.0;
    std::exception_ptr error;  ///< forward failure: fail the whole flush
  };

  void worker_loop(Target& t);
  /// Score one drained batch (cache pass, deduped model pass).
  BatchResult process_batch(Target& t, std::vector<Pending>& batch);

  ServeOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> paused_{false};

  mutable std::shared_mutex registry_mu_;  ///< guards targets_ map shape
  std::map<std::string, std::unique_ptr<Target>, std::less<>> targets_;
};

}  // namespace impeccable::serve
