#pragma once
// Structure and trajectory file I/O — the on-disk interchange between
// pipeline stages (the paper's stages pass PDB structures, trajectory files
// and CSV score lists between S1, S2 and S3).
//
//  * PDB subset:   ATOM/HETATM records; proteins as CA atoms, ligands as
//                  heavy-atom HETATMs. Good enough for any molecular viewer.
//  * XYZ trajectory: plain multi-frame XYZ (count / comment / atom lines),
//                  readable by VMD/OVITO and round-trippable here.

#include <string>
#include <vector>

#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"

namespace impeccable::md {

/// Write the system at the given coordinates as a minimal PDB file.
void write_pdb(const System& system, const std::vector<common::Vec3>& positions,
               const std::string& path);

/// Append/write a trajectory as multi-frame XYZ. Bead element symbols are
/// "CA" for protein beads and "C" for ligand beads unless `elements` is
/// given (one symbol per bead).
void write_xyz(const Trajectory& trajectory, const std::string& path,
               const std::vector<std::string>& elements = {});

/// Read a multi-frame XYZ file back (positions only; energies/time zeroed).
/// Throws std::runtime_error on malformed input.
Trajectory read_xyz(const std::string& path);

}  // namespace impeccable::md
