#include "impeccable/md/integrator.hpp"

#include <algorithm>
#include <cmath>

namespace impeccable::md {

using common::Vec3;

LangevinIntegrator::LangevinIntegrator(const ForceField& ff,
                                       const LangevinOptions& opts,
                                       std::uint64_t seed)
    : ff_(ff), opts_(opts), rng_(seed) {}

void LangevinIntegrator::thermalize(std::vector<Vec3>& vel) {
  const auto& beads = ff_.topology().beads;
  vel.resize(beads.size());
  for (std::size_t i = 0; i < beads.size(); ++i) {
    const double s = std::sqrt(kBoltzmann * opts_.temperature / beads[i].mass);
    vel[i] = {rng_.gauss(0, s), rng_.gauss(0, s), rng_.gauss(0, s)};
  }
}

double LangevinIntegrator::kinetic_temperature(const std::vector<Vec3>& vel) const {
  const auto& beads = ff_.topology().beads;
  double ke = 0.0;
  for (std::size_t i = 0; i < beads.size(); ++i)
    ke += 0.5 * beads[i].mass * vel[i].norm2();
  const double dof = 3.0 * static_cast<double>(beads.size());
  return 2.0 * ke / (dof * kBoltzmann);
}

void LangevinIntegrator::run(std::vector<Vec3>& pos, std::vector<Vec3>& vel,
                             int steps) {
  const auto& beads = ff_.topology().beads;
  const double dt = opts_.dt;
  const double gamma = opts_.friction;
  const double c1 = std::exp(-gamma * dt);
  const double kT = kBoltzmann * opts_.temperature;

  if (forces_.size() != pos.size())
    last_energy_ = ff_.evaluate(pos, &forces_);

  for (int s = 0; s < steps; ++s) {
    // B: half kick.
    for (std::size_t i = 0; i < pos.size(); ++i)
      vel[i] += forces_[i] * (0.5 * dt / beads[i].mass);
    // A: half drift.
    for (std::size_t i = 0; i < pos.size(); ++i) pos[i] += vel[i] * (0.5 * dt);
    // O: Ornstein-Uhlenbeck.
    for (std::size_t i = 0; i < pos.size(); ++i) {
      const double sigma = std::sqrt(kT * (1.0 - c1 * c1) / beads[i].mass);
      vel[i] = vel[i] * c1 +
               Vec3{rng_.gauss(0, sigma), rng_.gauss(0, sigma), rng_.gauss(0, sigma)};
    }
    // A: half drift.
    for (std::size_t i = 0; i < pos.size(); ++i) pos[i] += vel[i] * (0.5 * dt);
    // B: half kick with fresh forces.
    last_energy_ = ff_.evaluate(pos, &forces_);
    for (std::size_t i = 0; i < pos.size(); ++i)
      vel[i] += forces_[i] * (0.5 * dt / beads[i].mass);
    ++steps_;
  }
}

MinimizeResult minimize_steepest(const ForceField& ff, std::vector<Vec3>& pos,
                                 int max_iterations, double initial_step) {
  MinimizeResult res;
  std::vector<Vec3> forces;
  double energy = ff.evaluate(pos, &forces).total();
  res.initial_energy = energy;
  double step = initial_step;

  for (int it = 0; it < max_iterations; ++it) {
    double fmax = 0.0;
    for (const auto& f : forces) fmax = std::max(fmax, f.norm());
    if (fmax < 1e-4) break;

    std::vector<Vec3> trial(pos.size());
    for (std::size_t i = 0; i < pos.size(); ++i)
      trial[i] = pos[i] + forces[i] * (step / std::max(fmax, 1e-9));

    std::vector<Vec3> trial_forces;
    const double trial_energy = ff.evaluate(trial, &trial_forces).total();
    ++res.iterations;
    if (trial_energy < energy) {
      pos = std::move(trial);
      forces = std::move(trial_forces);
      energy = trial_energy;
      step *= 1.2;
    } else {
      step *= 0.5;
      if (step < 1e-8) break;
    }
  }
  res.final_energy = energy;
  return res;
}

MinimizeResult minimize_fire(const ForceField& ff, std::vector<Vec3>& pos,
                             int max_iterations, double dt0) {
  MinimizeResult res;
  std::vector<Vec3> forces;
  res.initial_energy = ff.evaluate(pos, &forces).total();

  std::vector<Vec3> vel(pos.size());
  double dt = dt0;
  const double dt_max = 10 * dt0;
  double alpha = 0.1;
  int n_pos = 0;

  double energy = res.initial_energy;
  for (int it = 0; it < max_iterations; ++it) {
    // Power P = F·v decides acceleration vs. restart.
    double power = 0.0, fnorm = 0.0, vnorm = 0.0;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      power += forces[i].dot(vel[i]);
      fnorm += forces[i].norm2();
      vnorm += vel[i].norm2();
    }
    fnorm = std::sqrt(fnorm);
    vnorm = std::sqrt(vnorm);
    if (fnorm < 1e-4) break;

    if (power > 0.0) {
      for (std::size_t i = 0; i < pos.size(); ++i)
        vel[i] = vel[i] * (1 - alpha) + forces[i] * (alpha * vnorm / std::max(fnorm, 1e-12));
      if (++n_pos > 5) {
        dt = std::min(dt * 1.1, dt_max);
        alpha *= 0.99;
      }
    } else {
      for (auto& v : vel) v = Vec3{};
      dt *= 0.5;
      alpha = 0.1;
      n_pos = 0;
    }

    // Semi-implicit Euler (unit mass in minimization).
    for (std::size_t i = 0; i < pos.size(); ++i) {
      vel[i] += forces[i] * dt;
      pos[i] += vel[i] * dt;
    }
    energy = ff.evaluate(pos, &forces).total();
    ++res.iterations;
  }
  res.final_energy = energy;
  return res;
}

}  // namespace impeccable::md
