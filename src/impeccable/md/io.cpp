#include "impeccable/md/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace impeccable::md {

void write_pdb(const System& system, const std::vector<common::Vec3>& positions,
               const std::string& path) {
  if (positions.size() != static_cast<std::size_t>(system.topology.bead_count()))
    throw std::invalid_argument("write_pdb: position count mismatch");
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_pdb: cannot open " + path);

  int serial = 1;
  int residue = 1;
  for (int i = 0; i < system.topology.bead_count(); ++i) {
    const Bead& b = system.topology.beads[static_cast<std::size_t>(i)];
    const common::Vec3& p = positions[static_cast<std::size_t>(i)];
    const bool protein = b.kind == BeadKind::Protein;
    char line[96];
    std::snprintf(line, sizeof line,
                  "%-6s%5d  %-3s %-3s %c%4d    %8.3f%8.3f%8.3f%6.2f%6.2f\n",
                  protein ? "ATOM" : "HETATM", serial++,
                  protein ? "CA" : "C", protein ? "ALA" : "LIG",
                  protein ? 'A' : 'B', protein ? residue++ : 1, p.x, p.y, p.z,
                  1.0, 0.0);
    f << line;
  }
  f << "END\n";
}

void write_xyz(const Trajectory& trajectory, const std::string& path,
               const std::vector<std::string>& elements) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("write_xyz: cannot open " + path);
  for (const auto& frame : trajectory.frames) {
    f << frame.positions.size() << "\n";
    f << "t=" << frame.time << " E=" << frame.energy.total() << "\n";
    for (std::size_t i = 0; i < frame.positions.size(); ++i) {
      const std::string sym =
          i < elements.size() ? elements[i] : std::string("C");
      char line[96];
      std::snprintf(line, sizeof line, "%-4s %12.6f %12.6f %12.6f\n",
                    sym.c_str(), frame.positions[i].x, frame.positions[i].y,
                    frame.positions[i].z);
      f << line;
    }
  }
}

Trajectory read_xyz(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_xyz: cannot open " + path);
  Trajectory traj;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::size_t count = 0;
    try {
      count = static_cast<std::size_t>(std::stoul(line));
    } catch (const std::exception&) {
      throw std::runtime_error("read_xyz: bad frame header '" + line + "'");
    }
    if (!std::getline(f, line))
      throw std::runtime_error("read_xyz: missing comment line");
    Frame frame;
    frame.positions.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!std::getline(f, line))
        throw std::runtime_error("read_xyz: truncated frame");
      std::istringstream is(line);
      std::string sym;
      common::Vec3 p;
      if (!(is >> sym >> p.x >> p.y >> p.z))
        throw std::runtime_error("read_xyz: bad atom line '" + line + "'");
      frame.positions.push_back(p);
    }
    traj.frames.push_back(std::move(frame));
  }
  return traj;
}

}  // namespace impeccable::md
