#pragma once
// Coarse-grained MD topology.
//
// Substitution note (DESIGN.md): stands in for OpenMM/NAMD all-atom systems.
// Proteins are Cα bead chains held by bonds, angles and an elastic network
// (anisotropic-network-model style); ligands are heavy-atom beads with the
// molecular connectivity. This reproduces the statistical behaviour ESMACS
// and DeepDriveMD consume — ensemble variance, conformational drift, contact
// dynamics — at laptop cost.

#include <cstdint>
#include <vector>

#include "impeccable/common/vec3.hpp"

namespace impeccable::md {

enum class BeadKind : std::uint8_t { Protein, Ligand };

struct Bead {
  double mass = 12.0;       ///< amu
  double charge = 0.0;      ///< e
  double radius = 2.0;      ///< Å (LJ sigma/2-ish)
  double epsilon = 0.15;    ///< kcal/mol
  bool hydrophobic = false;
  BeadKind kind = BeadKind::Protein;
};

struct HarmonicBond {
  int a = -1, b = -1;
  double length = 3.8;  ///< Å (Cα-Cα virtual bond default)
  double k = 40.0;      ///< kcal/mol/Å²
};

struct HarmonicAngle {
  int a = -1, b = -1, c = -1;
  double theta0 = 2.0;  ///< radians
  double k = 8.0;       ///< kcal/mol/rad²
};

struct Topology {
  std::vector<Bead> beads;
  std::vector<HarmonicBond> bonds;
  std::vector<HarmonicAngle> angles;

  int bead_count() const { return static_cast<int>(beads.size()); }
  /// Indices of protein (resp. ligand) beads, in order.
  std::vector<int> selection(BeadKind kind) const;
  /// True if beads i and j share a bond (used for nonbonded exclusion).
  bool bonded(int i, int j) const;
  /// Precompute the nonbonded exclusion set (1-2 pairs).
  std::vector<std::pair<int, int>> exclusions() const;
};

}  // namespace impeccable::md
