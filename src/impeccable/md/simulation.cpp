#include "impeccable/md/simulation.hpp"

#include <algorithm>

#include "impeccable/common/stats.hpp"

namespace impeccable::md {

SimulationResult run_replica(const System& system, const SimulationOptions& opts,
                             std::uint64_t seed) {
  SimulationResult res;
  ForceField ff(system.topology, opts.forcefield);

  std::vector<common::Vec3> pos = system.positions;
  res.minimization = minimize_steepest(ff, pos, opts.minimize_iterations);

  LangevinIntegrator integrator(ff, opts.langevin, seed);
  std::vector<common::Vec3> vel;
  integrator.thermalize(vel);

  std::uint64_t equil_steps = 0;
  if (opts.equilibration_restraint_k > 0.0 && opts.equilibration_steps > 0) {
    // Restrained equilibration: hold the protein near the minimized
    // structure while velocities and the ligand relax.
    ForceFieldOptions ropts = opts.forcefield;
    ropts.restraint_k = opts.equilibration_restraint_k;
    ropts.restraint_ref = pos;
    ropts.restrained = system.topology.selection(BeadKind::Protein);
    ForceField restrained_ff(system.topology, ropts);
    LangevinIntegrator equil(restrained_ff, opts.langevin, seed ^ 0xe471);
    equil.run(pos, vel, opts.equilibration_steps);
    equil_steps = equil.steps_taken();
  } else {
    integrator.run(pos, vel, opts.equilibration_steps);
  }

  common::RunningStats temp;
  double time = 0.0;
  const int chunks =
      (opts.production_steps + opts.report_interval - 1) / opts.report_interval;
  res.trajectory.frames.reserve(static_cast<std::size_t>(chunks));
  int remaining = opts.production_steps;
  while (remaining > 0) {
    const int n = std::min(opts.report_interval, remaining);
    integrator.run(pos, vel, n);
    remaining -= n;
    time += n * opts.langevin.dt;
    temp.add(integrator.kinetic_temperature(vel));

    Frame f;
    f.positions = pos;
    f.energy = integrator.last_energy();
    f.time = time;
    res.trajectory.frames.push_back(std::move(f));
  }
  res.md_steps = integrator.steps_taken() + equil_steps;
  res.mean_temperature = temp.count() ? temp.mean() : 0.0;
  return res;
}

std::uint64_t flops_per_md_step(int beads, std::uint64_t pairs) {
  // BAOAB: ~30 flops/bead for the kick/drift/OU updates; bonded terms ~60
  // flops each amortized into the per-bead figure; each nonbonded pair costs
  // ~70 flops (distance, exp, LJ powers, force assembly).
  return static_cast<std::uint64_t>(beads) * 90 + pairs * 70;
}

}  // namespace impeccable::md
