#include "impeccable/md/analysis.hpp"

#include <stdexcept>

#include "impeccable/common/kabsch.hpp"
#include "impeccable/common/stats.hpp"

namespace impeccable::md {

using common::Vec3;

namespace {

std::vector<Vec3> gather(const std::vector<Vec3>& pos,
                         const std::vector<int>& selection) {
  std::vector<Vec3> out;
  out.reserve(selection.size());
  for (int i : selection) out.push_back(pos[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace

std::vector<double> rmsd_series(const Trajectory& traj,
                                const std::vector<int>& selection) {
  std::vector<double> out;
  if (traj.frames.empty()) return out;
  if (selection.empty())
    throw std::invalid_argument("rmsd_series: empty selection");
  const auto ref = gather(traj.frames.front().positions, selection);
  out.reserve(traj.size());
  for (const auto& f : traj.frames)
    out.push_back(common::rmsd_superposed(ref, gather(f.positions, selection)));
  return out;
}

std::vector<double> contact_series(const Trajectory& traj, const System& system,
                                   double cutoff) {
  const auto prot = system.topology.selection(BeadKind::Protein);
  const auto lig = system.topology.selection(BeadKind::Ligand);
  const double c2 = cutoff * cutoff;
  std::vector<double> out;
  out.reserve(traj.size());
  for (const auto& f : traj.frames) {
    int contacts = 0;
    for (int i : lig)
      for (int j : prot)
        if (common::distance2(f.positions[static_cast<std::size_t>(i)],
                              f.positions[static_cast<std::size_t>(j)]) < c2)
          ++contacts;
    out.push_back(static_cast<double>(contacts));
  }
  return out;
}

std::vector<Vec3> point_cloud(const Frame& frame,
                              const std::vector<int>& selection) {
  if (selection.empty())
    throw std::invalid_argument("point_cloud: empty selection");
  auto cloud = gather(frame.positions, selection);
  Vec3 c;
  for (const auto& p : cloud) c += p;
  c /= static_cast<double>(cloud.size());
  for (auto& p : cloud) p -= c;
  return cloud;
}

std::vector<Vec3> protein_point_cloud(const Frame& frame, const System& system) {
  return point_cloud(frame, system.topology.selection(BeadKind::Protein));
}

double mean_interaction_energy(const Trajectory& traj) {
  common::RunningStats rs;
  for (const auto& f : traj.frames) rs.add(f.energy.interaction);
  return rs.count() ? rs.mean() : 0.0;
}

std::size_t detect_equilibration(const std::vector<double>& series) {
  const std::size_t n = series.size();
  if (n < 8) return 0;

  // Candidate truncation points: ~16 positions over the first half.
  double best_neff = -1.0;
  std::size_t best_t0 = 0;
  for (int k = 0; k < 16; ++k) {
    const std::size_t t0 = k * (n / 2) / 16;
    const std::span<const double> tail(series.data() + t0, n - t0);
    const double naive = common::std_error(tail);
    const double blocked = common::block_average_error(tail);
    if (naive <= 0.0) continue;
    // Statistical inefficiency g = (blocked/naive)^2; N_eff = len / g.
    const double g = std::max(1.0, (blocked / naive) * (blocked / naive));
    const double neff = static_cast<double>(tail.size()) / g;
    if (neff > best_neff) {
      best_neff = neff;
      best_t0 = t0;
    }
  }
  return best_t0;
}

}  // namespace impeccable::md
