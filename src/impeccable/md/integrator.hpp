#pragma once
// Time integration and energy minimization.
//
//  * LangevinIntegrator — BAOAB splitting (Leimkuhler–Matthews), the standard
//    high-accuracy Langevin scheme; deterministic per seed.
//  * minimize_steepest / minimize_fire — used before equilibration, matching
//    the minimization step of the ESMACS protocol (Sec. 7.2: "S3-CG/FG ...
//    a minimization and an MD step").

#include <cstdint>
#include <vector>

#include "impeccable/common/rng.hpp"
#include "impeccable/md/forcefield.hpp"

namespace impeccable::md {

struct LangevinOptions {
  double dt = 0.01;          ///< ps-ish (reduced units)
  double temperature = 300;  ///< K
  double friction = 1.0;     ///< 1/ps
};

/// kB in kcal/mol/K.
inline constexpr double kBoltzmann = 0.0019872041;

class LangevinIntegrator {
 public:
  LangevinIntegrator(const ForceField& ff, const LangevinOptions& opts,
                     std::uint64_t seed);

  /// Advance `steps` steps from (pos, vel) in place. Forces are recomputed
  /// internally; the last energy breakdown is retained.
  void run(std::vector<common::Vec3>& pos, std::vector<common::Vec3>& vel,
           int steps);

  /// Draw Maxwell–Boltzmann velocities for the topology at the configured
  /// temperature.
  void thermalize(std::vector<common::Vec3>& vel);

  const EnergyBreakdown& last_energy() const { return last_energy_; }
  /// Instantaneous kinetic temperature of the given velocities.
  double kinetic_temperature(const std::vector<common::Vec3>& vel) const;
  std::uint64_t steps_taken() const { return steps_; }

 private:
  const ForceField& ff_;
  LangevinOptions opts_;
  common::Rng rng_;
  EnergyBreakdown last_energy_;
  std::vector<common::Vec3> forces_;
  std::uint64_t steps_ = 0;
};

struct MinimizeResult {
  double initial_energy = 0.0;
  double final_energy = 0.0;
  int iterations = 0;
};

/// Steepest descent with adaptive step size.
MinimizeResult minimize_steepest(const ForceField& ff,
                                 std::vector<common::Vec3>& pos,
                                 int max_iterations = 200,
                                 double initial_step = 0.05);

/// FIRE (fast inertial relaxation engine) minimizer.
MinimizeResult minimize_fire(const ForceField& ff,
                             std::vector<common::Vec3>& pos,
                             int max_iterations = 400, double dt0 = 0.02);

}  // namespace impeccable::md
