#pragma once
// System builders: procedural Cα protein models and protein-ligand complexes
// (LPCs) seeded from docking poses.
//
// Substitution note (DESIGN.md): the paper simulates crystal-structure-based
// all-atom systems (e.g. PLPro, 309 Cα atoms). We synthesize a globular Cα
// chain around a binding pocket from the same seed that generated the
// docking receptor, so S1 → S3 hand-off mirrors the paper's: the docked
// ligand coordinates are placed into the pocket of the MD protein.

#include <cstdint>
#include <string>
#include <vector>

#include "impeccable/chem/molecule.hpp"
#include "impeccable/md/topology.hpp"

namespace impeccable::md {

/// A simulation-ready system: topology + initial coordinates.
struct System {
  Topology topology;
  std::vector<common::Vec3> positions;

  int protein_beads = 0;  ///< beads [0, protein_beads) are protein
  int ligand_beads = 0;   ///< beads [protein_beads, protein_beads+ligand_beads)
};

struct ProteinOptions {
  int residues = 120;          ///< Cα count
  /// Å cavity kept free around the origin. Matches the docking receptor's
  /// pocket radius (7 Å wall + jitter) so transplanted poses make contact.
  double pocket_radius = 7.0;
  double contact_cutoff = 7.5; ///< Å elastic-network cutoff
  double network_k = 0.4;      ///< kcal/mol/Å² elastic-network stiffness
  double charged_fraction = 0.25;
  double hydrophobic_fraction = 0.4;
};

/// Build a folded Cα chain wrapped around a central pocket. The chain walks
/// a spherical spiral with radial noise; consecutive beads are bonded, 1-3
/// angles keep local stiffness, and an elastic network of native contacts
/// (added as extra bonds) holds the fold — a standard Gō/ANM-style model.
System build_protein(std::uint64_t seed, const ProteinOptions& opts = {});

/// Append a ligand to a protein system: heavy atoms of `mol` become beads at
/// `coords` (typically the docked pose), bonded per the molecular graph.
/// Returns the combined system; the protein part is copied from `protein`.
System build_lpc(const System& protein, const chem::Molecule& mol,
                 const std::vector<common::Vec3>& coords);

}  // namespace impeccable::md
