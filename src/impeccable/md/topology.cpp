#include "impeccable/md/topology.hpp"

#include <algorithm>

namespace impeccable::md {

std::vector<int> Topology::selection(BeadKind kind) const {
  std::vector<int> out;
  for (int i = 0; i < bead_count(); ++i)
    if (beads[static_cast<std::size_t>(i)].kind == kind) out.push_back(i);
  return out;
}

bool Topology::bonded(int i, int j) const {
  for (const auto& b : bonds)
    if ((b.a == i && b.b == j) || (b.a == j && b.b == i)) return true;
  return false;
}

std::vector<std::pair<int, int>> Topology::exclusions() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(bonds.size());
  for (const auto& b : bonds)
    out.emplace_back(std::min(b.a, b.b), std::max(b.a, b.b));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace impeccable::md
