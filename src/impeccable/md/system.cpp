#include "impeccable/md/system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "impeccable/common/rng.hpp"
#include "impeccable/dock/ligand.hpp"

namespace impeccable::md {

using common::Rng;
using common::Vec3;

System build_protein(std::uint64_t seed, const ProteinOptions& opts) {
  System sys;
  Rng rng(seed ^ 0x9807e14eULL);

  // Spherical spiral: the chain winds around the pocket from pole to pole,
  // with radial jitter. Leaves the +z mouth open like the docking receptor.
  const int n = opts.residues;
  sys.positions.reserve(static_cast<std::size_t>(n));
  const double turns = std::max(3.0, n / 18.0);
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);       // 0..1
    const double polar = (0.15 + 0.75 * t) * 3.14159265358979; // avoid the mouth
    const double azim = turns * 2.0 * 3.14159265358979 * t;
    const double radius = opts.pocket_radius + rng.uniform(0.0, 2.5);
    sys.positions.push_back(Vec3{radius * std::sin(polar) * std::cos(azim),
                                 radius * std::sin(polar) * std::sin(azim),
                                 radius * std::cos(polar)});
  }

  // Beads with residue-like character.
  for (int i = 0; i < n; ++i) {
    Bead b;
    b.kind = BeadKind::Protein;
    b.mass = 110.0;  // average residue mass
    b.radius = 2.3;
    // Residue-level beads subsume side-chain contacts: deeper wells than a
    // single heavy atom, so bound poses score tens of kcal/mol (Fig. 5A).
    b.epsilon = 0.6;
    const double u = rng.uniform();
    if (u < opts.charged_fraction) {
      b.charge = rng.bernoulli(0.5) ? 0.8 : -0.8;
    } else if (u < opts.charged_fraction + opts.hydrophobic_fraction) {
      b.hydrophobic = true;
    } else {
      b.charge = rng.uniform(-0.2, 0.2);
    }
    sys.topology.beads.push_back(b);
  }
  sys.protein_beads = n;

  // Backbone bonds and angles.
  for (int i = 0; i + 1 < n; ++i) {
    HarmonicBond bond;
    bond.a = i;
    bond.b = i + 1;
    bond.length = common::distance(sys.positions[static_cast<std::size_t>(i)],
                                   sys.positions[static_cast<std::size_t>(i + 1)]);
    bond.k = 40.0;
    sys.topology.bonds.push_back(bond);
  }
  for (int i = 0; i + 2 < n; ++i) {
    HarmonicAngle ang;
    ang.a = i;
    ang.b = i + 1;
    ang.c = i + 2;
    const Vec3 r1 = sys.positions[static_cast<std::size_t>(i)] -
                    sys.positions[static_cast<std::size_t>(i + 1)];
    const Vec3 r2 = sys.positions[static_cast<std::size_t>(i + 2)] -
                    sys.positions[static_cast<std::size_t>(i + 1)];
    ang.theta0 = std::acos(std::clamp(
        r1.dot(r2) / (r1.norm() * r2.norm()), -1.0, 1.0));
    ang.k = 8.0;
    sys.topology.angles.push_back(ang);
  }

  // Elastic network: native contacts as soft bonds at their current length.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 3; j < n; ++j) {
      const double d = common::distance(sys.positions[static_cast<std::size_t>(i)],
                                        sys.positions[static_cast<std::size_t>(j)]);
      if (d < opts.contact_cutoff) {
        HarmonicBond en;
        en.a = i;
        en.b = j;
        en.length = d;
        en.k = opts.network_k;
        sys.topology.bonds.push_back(en);
      }
    }
  }
  return sys;
}

System build_lpc(const System& protein, const chem::Molecule& mol,
                 const std::vector<Vec3>& coords) {
  if (static_cast<int>(coords.size()) != mol.atom_count())
    throw std::invalid_argument("build_lpc: coords/molecule size mismatch");

  System sys = protein;
  const int offset = sys.topology.bead_count();

  const auto charges = dock::partial_charges(mol);
  for (int i = 0; i < mol.atom_count(); ++i) {
    Bead b;
    b.kind = BeadKind::Ligand;
    const chem::ElementInfo& ei = chem::info(mol.atom(i).element);
    b.mass = ei.mass;
    b.radius = ei.vdw_radius;
    // United-atom heavy beads carry their hydrogens: deepen the well.
    b.epsilon = std::max(0.3, ei.well_depth);
    b.charge = charges[static_cast<std::size_t>(i)];
    b.hydrophobic = ei.hydrophobicity > 0.3 && mol.hydrogen_count(i) > 0;
    sys.topology.beads.push_back(b);
    sys.positions.push_back(coords[static_cast<std::size_t>(i)]);
  }
  sys.ligand_beads = mol.atom_count();

  for (int bi = 0; bi < mol.bond_count(); ++bi) {
    const chem::Bond& b = mol.bond(bi);
    HarmonicBond bond;
    bond.a = offset + b.a;
    bond.b = offset + b.b;
    bond.length = common::distance(coords[static_cast<std::size_t>(b.a)],
                                   coords[static_cast<std::size_t>(b.b)]);
    bond.k = 80.0;
    sys.topology.bonds.push_back(bond);
  }
  // Ligand 1-3 angles from the graph.
  for (int j = 0; j < mol.atom_count(); ++j) {
    const auto nbrs = mol.neighbors(j);
    for (std::size_t x = 0; x < nbrs.size(); ++x) {
      for (std::size_t y = x + 1; y < nbrs.size(); ++y) {
        HarmonicAngle ang;
        ang.a = offset + nbrs[x];
        ang.b = offset + j;
        ang.c = offset + nbrs[y];
        const Vec3 r1 = coords[static_cast<std::size_t>(nbrs[x])] -
                        coords[static_cast<std::size_t>(j)];
        const Vec3 r2 = coords[static_cast<std::size_t>(nbrs[y])] -
                        coords[static_cast<std::size_t>(j)];
        ang.theta0 = std::acos(std::clamp(
            r1.dot(r2) / std::max(1e-9, r1.norm() * r2.norm()), -1.0, 1.0));
        ang.k = 15.0;
        sys.topology.angles.push_back(ang);
      }
    }
  }
  return sys;
}

}  // namespace impeccable::md
