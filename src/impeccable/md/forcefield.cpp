#include "impeccable/md/forcefield.hpp"

#include <algorithm>
#include <cmath>

namespace impeccable::md {

using common::Vec3;

void CellList::build(const std::vector<Vec3>& pos, double cutoff) {
  cell_size_ = cutoff;
  Vec3 lo{1e30, 1e30, 1e30}, hi{-1e30, -1e30, -1e30};
  for (const auto& p : pos) {
    lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y); lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x); hi.y = std::max(hi.y, p.y); hi.z = std::max(hi.z, p.z);
  }
  origin_ = lo;
  nx_ = std::max(1, static_cast<int>((hi.x - lo.x) / cell_size_) + 1);
  ny_ = std::max(1, static_cast<int>((hi.y - lo.y) / cell_size_) + 1);
  nz_ = std::max(1, static_cast<int>((hi.z - lo.z) / cell_size_) + 1);
  cells_.assign(static_cast<std::size_t>(nx_) * ny_ * nz_, {});
  for (std::size_t i = 0; i < pos.size(); ++i)
    cells_[static_cast<std::size_t>(cell_of(pos[i]))].push_back(static_cast<int>(i));
}

int CellList::cell_of(const Vec3& p) const {
  const int cx = std::clamp(static_cast<int>((p.x - origin_.x) / cell_size_), 0, nx_ - 1);
  const int cy = std::clamp(static_cast<int>((p.y - origin_.y) / cell_size_), 0, ny_ - 1);
  const int cz = std::clamp(static_cast<int>((p.z - origin_.z) / cell_size_), 0, nz_ - 1);
  return (cz * ny_ + cy) * nx_ + cx;
}

ForceField::ForceField(const Topology& topo, const ForceFieldOptions& opts)
    : topo_(topo), opts_(opts) {
  for (const auto& [a, b] : topo.exclusions())
    excluded_.insert((static_cast<std::uint64_t>(a) << 32) |
                     static_cast<std::uint32_t>(b));
  // Also exclude 1-3 pairs (angle endpoints) — they are held by the angle
  // term and would otherwise clash through LJ.
  for (const auto& ang : topo.angles) {
    const int a = std::min(ang.a, ang.c), b = std::max(ang.a, ang.c);
    excluded_.insert((static_cast<std::uint64_t>(a) << 32) |
                     static_cast<std::uint32_t>(b));
  }
}

bool ForceField::is_excluded(int i, int j) const {
  if (i > j) std::swap(i, j);
  return excluded_.contains((static_cast<std::uint64_t>(i) << 32) |
                            static_cast<std::uint32_t>(j));
}

EnergyBreakdown ForceField::evaluate(const std::vector<Vec3>& pos,
                                     std::vector<Vec3>* forces) const {
  EnergyBreakdown e;
  if (forces) forces->assign(pos.size(), Vec3{});

  auto add_force = [&](int i, const Vec3& f) {
    if (!forces) return;
    Vec3 capped = f;
    const double n = capped.norm();
    if (n > opts_.max_force) capped *= opts_.max_force / n;
    (*forces)[static_cast<std::size_t>(i)] += capped;
  };

  // Bonds.
  for (const auto& b : topo_.bonds) {
    const Vec3 d = pos[static_cast<std::size_t>(b.b)] - pos[static_cast<std::size_t>(b.a)];
    const double r = std::max(1e-9, d.norm());
    const double dr = r - b.length;
    e.bond += b.k * dr * dr;
    const Vec3 f = d / r * (2.0 * b.k * dr);
    add_force(b.a, f);
    add_force(b.b, -f);
  }

  // Angles (harmonic in theta).
  for (const auto& ang : topo_.angles) {
    const Vec3 r1 = pos[static_cast<std::size_t>(ang.a)] - pos[static_cast<std::size_t>(ang.b)];
    const Vec3 r2 = pos[static_cast<std::size_t>(ang.c)] - pos[static_cast<std::size_t>(ang.b)];
    const double n1 = std::max(1e-9, r1.norm());
    const double n2 = std::max(1e-9, r2.norm());
    double cosv = std::clamp(r1.dot(r2) / (n1 * n2), -1.0, 1.0);
    const double theta = std::acos(cosv);
    const double dt = theta - ang.theta0;
    e.angle += ang.k * dt * dt;
    if (forces) {
      const double sinv = std::sqrt(std::max(1e-12, 1.0 - cosv * cosv));
      const double dEdTheta = 2.0 * ang.k * dt;
      // dtheta/dr1 = (cos*u1 - u2) / (n1 * sin), u = unit vectors.
      const Vec3 u1 = r1 / n1, u2 = r2 / n2;
      const Vec3 f1 = (u1 * cosv - u2) * (dEdTheta / (n1 * sinv));
      const Vec3 f3 = (u2 * cosv - u1) * (dEdTheta / (n2 * sinv));
      add_force(ang.a, -f1);
      add_force(ang.c, -f3);
      add_force(ang.b, f1 + f3);
    }
  }

  // Position restraints.
  if (opts_.restraint_k > 0.0) {
    if (opts_.restraint_ref.size() != pos.size())
      throw std::invalid_argument(
          "ForceField: restraint_ref size must match bead count");
    auto restrain = [&](int i) {
      const Vec3 d = pos[static_cast<std::size_t>(i)] -
                     opts_.restraint_ref[static_cast<std::size_t>(i)];
      e.restraint += opts_.restraint_k * d.norm2();
      add_force(i, d * (-2.0 * opts_.restraint_k));
    };
    if (opts_.restrained.empty()) {
      for (int i = 0; i < topo_.bead_count(); ++i) restrain(i);
    } else {
      for (int i : opts_.restrained) restrain(i);
    }
  }

  // Nonbonded via cell list.
  cells_.build(pos, opts_.cutoff);
  const double cutoff2 = opts_.cutoff * opts_.cutoff;
  std::uint64_t pairs = 0;
  const auto& beads = topo_.beads;
  cells_.for_each_pair(pos, opts_.cutoff, [&](int i, int j) {
    if (is_excluded(i, j)) return;
    const Vec3 d = pos[static_cast<std::size_t>(j)] - pos[static_cast<std::size_t>(i)];
    const double r2 = d.norm2();
    if (r2 > cutoff2) return;
    ++pairs;
    const double r = std::max(0.8, std::sqrt(r2));
    const Bead& bi = beads[static_cast<std::size_t>(i)];
    const Bead& bj = beads[static_cast<std::size_t>(j)];

    double eps = std::sqrt(bi.epsilon * bj.epsilon);
    if (bi.hydrophobic && bj.hydrophobic) eps *= opts_.hydrophobic_boost;
    const double rij = bi.radius + bj.radius;
    const bool cross = bi.kind != bj.kind;
    const double lambda = cross ? opts_.interaction_scale : 1.0;

    // Soft-core 12-6 LJ in the alchemical coupling (Beutler-style):
    //   s(λ, r) = σ⁶ / (r⁶ + α(1-λ)σ⁶),  U = λ·ε·(s² - 2s).
    // At λ = 1 this is the plain 12-6; at λ → 0 the r → 0 singularity is
    // removed, so TIES can sample the decoupled endpoint. Potentials are
    // shifted to zero at the cutoff so the energy stays continuous as pairs
    // enter/leave the neighbour list.
    constexpr double kSoftAlpha = 0.5;
    const double soft = kSoftAlpha * (1.0 - lambda);
    const double sigma6 = rij * rij * rij * rij * rij * rij;
    auto s_of = [&](double rr) {
      const double r6 = rr * rr * rr * rr * rr * rr;
      return sigma6 / (r6 + soft * sigma6);
    };
    const double s = s_of(r);
    const double sc = s_of(opts_.cutoff);
    const double ulj = lambda * eps * ((s * s - 2.0 * s) - (sc * sc - 2.0 * sc));
    // dU/dr = λ·ε·(2s-2)·ds/dr,  ds/dr = -6 r⁵ s² / σ⁶.
    const double ds_dr = -6.0 * r * r * r * r * r * s * s / sigma6;
    const double dulj = lambda * eps * (2.0 * s - 2.0) * ds_dr;
    // dU/dλ = ε(s²-2s) + λ·ε·(2s-2)·ds/dλ,  ds/dλ = α·s².
    const double dlj_dl = eps * ((s * s - 2.0 * s) - (sc * sc - 2.0 * sc)) +
                          lambda * eps * (2.0 * s - 2.0) * kSoftAlpha * s * s;

    // Screened Coulomb, linearly coupled (bounded by the r >= 0.8 clamp).
    const double kappa = 1.0 / opts_.debye_length;
    const double qq = 332.0 * bi.charge * bj.charge / opts_.dielectric;
    const double uel_raw = qq * std::exp(-kappa * r) / r;
    const double uel_shift =
        uel_raw - qq * std::exp(-kappa * opts_.cutoff) / opts_.cutoff;
    const double duel = -uel_raw * (kappa + 1.0 / r);

    e.lj += ulj;
    e.coulomb += lambda * uel_shift;
    if (cross) {
      e.interaction += ulj + lambda * uel_shift;
      e.dh_dlambda += dlj_dl + uel_shift;
    }

    if (forces) {
      const Vec3 dir = d / r;
      const Vec3 f = dir * (-(dulj + lambda * duel));
      add_force(j, f);
      add_force(i, -f);
    }
  });
  last_pairs_ = pairs;
  return e;
}

double ForceField::interaction_energy(const std::vector<Vec3>& pos) const {
  // Direct double loop over the (small) ligand selection against protein.
  const auto lig = topo_.selection(BeadKind::Ligand);
  const auto prot = topo_.selection(BeadKind::Protein);
  const double cutoff2 = opts_.cutoff * opts_.cutoff;
  double total = 0.0;
  for (int i : lig) {
    const Bead& bi = topo_.beads[static_cast<std::size_t>(i)];
    for (int j : prot) {
      const Vec3 d = pos[static_cast<std::size_t>(j)] - pos[static_cast<std::size_t>(i)];
      const double r2 = d.norm2();
      if (r2 > cutoff2 || is_excluded(i, j)) continue;
      const double r = std::max(0.8, std::sqrt(r2));
      const Bead& bj = topo_.beads[static_cast<std::size_t>(j)];
      double eps = std::sqrt(bi.epsilon * bj.epsilon);
      if (bi.hydrophobic && bj.hydrophobic) eps *= opts_.hydrophobic_boost;
      const double rij = bi.radius + bj.radius;
      const double rr = rij / r;
      const double rr6 = rr * rr * rr * rr * rr * rr;
      const double rrc = rij / opts_.cutoff;
      const double rrc6 = rrc * rrc * rrc * rrc * rrc * rrc;
      total += eps * (rr6 * rr6 - 2.0 * rr6) - eps * (rrc6 * rrc6 - 2.0 * rrc6);
      const double qq = 332.0 * bi.charge * bj.charge / opts_.dielectric;
      total += qq * std::exp(-r / opts_.debye_length) / r -
               qq * std::exp(-opts_.cutoff / opts_.debye_length) / opts_.cutoff;
    }
  }
  return total;
}

}  // namespace impeccable::md
