#pragma once
// Trajectory analysis: the quantities S2 and the figures consume.
//  * RMSD series (Fig. 5B),
//  * heavy-atom protein-ligand contact counts — the paper's "pragmatic
//    measure of LPC stability" (Sec. 5.1.4),
//  * Cα point clouds for the 3D-AAE (Sec. 7.1.3).

#include <vector>

#include "impeccable/md/simulation.hpp"

namespace impeccable::md {

/// Per-frame RMSD of the selected beads against the first frame, after
/// optimal superposition.
std::vector<double> rmsd_series(const Trajectory& traj,
                                const std::vector<int>& selection);

/// Per-frame count of protein-ligand bead pairs within `cutoff` Å.
std::vector<double> contact_series(const Trajectory& traj, const System& system,
                                   double cutoff = 6.0);

/// Extract the protein Cα point cloud of one frame (the 3D-AAE input),
/// centered on its centroid.
std::vector<common::Vec3> protein_point_cloud(const Frame& frame,
                                              const System& system);

/// Point cloud over an arbitrary bead selection, centered on its centroid.
std::vector<common::Vec3> point_cloud(const Frame& frame,
                                      const std::vector<int>& selection);

/// Mean of the protein-ligand interaction energy over the trajectory frames
/// (uses the energies recorded at report time).
double mean_interaction_energy(const Trajectory& traj);

/// Automated equilibration detection (Chodera-style): choose the truncation
/// point t0 that maximizes the number of effectively uncorrelated samples in
/// series[t0:], with the statistical inefficiency estimated from block
/// averaging. Returns the index of the first production sample (0 for an
/// already-stationary series; series.size()-1 at worst).
std::size_t detect_equilibration(const std::vector<double>& series);

}  // namespace impeccable::md
