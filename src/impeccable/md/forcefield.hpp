#pragma once
// Coarse-grained force field: harmonic bonds/angles + 12-6 LJ with
// hydrophobic deepening + Debye–Hückel screened electrostatics. Nonbonded
// interactions run over a cell list rebuilt on demand.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "impeccable/md/topology.hpp"

namespace impeccable::md {

struct ForceFieldOptions {
  double cutoff = 10.0;            ///< Å nonbonded cutoff
  double debye_length = 8.0;       ///< Å screening length
  double dielectric = 10.0;        ///< effective dielectric
  double hydrophobic_boost = 2.0;  ///< epsilon multiplier for phobic pairs
  double max_force = 500.0;        ///< kcal/mol/Å clamp, keeps bad starts stable
  /// Alchemical coupling λ of protein-ligand nonbonded terms: H(λ) = bonded
  /// + intra-molecular + λ·E_inter. λ = 1 is the physical system; TIES
  /// (thermodynamic integration) samples dH/dλ = E_inter across λ windows.
  double interaction_scale = 1.0;
  /// Harmonic position restraints (kcal/mol/Å²) towards `restraint_ref`;
  /// 0 disables. Standard equilibration practice: hold the solute near the
  /// starting structure while the environment relaxes.
  double restraint_k = 0.0;
  /// Reference positions for the restraints (must match bead count when
  /// restraint_k > 0). Only beads listed in `restrained` are held; an empty
  /// list restrains every bead.
  std::vector<common::Vec3> restraint_ref;
  std::vector<int> restrained;
};

/// Energy decomposition returned by evaluate().
struct EnergyBreakdown {
  double bond = 0.0;
  double angle = 0.0;
  double lj = 0.0;
  double coulomb = 0.0;
  double restraint = 0.0;
  /// lj + coulomb restricted to protein-ligand pairs at the current λ
  /// (the MMPBSA input; equals the physical interaction energy at λ = 1).
  double interaction = 0.0;
  /// ∂H/∂λ of the soft-core coupled Hamiltonian — the TIES observable.
  /// Coincides with `interaction` at λ = 1 up to the soft-core derivative.
  double dh_dlambda = 0.0;
  double total() const { return bond + angle + lj + coulomb + restraint; }
};

/// Spatial cell list for cutoff-based pair iteration.
class CellList {
 public:
  void build(const std::vector<common::Vec3>& pos, double cutoff);
  /// Visit unordered pairs (i < j) within cutoff; f(i, j).
  template <typename F>
  void for_each_pair(const std::vector<common::Vec3>& pos, double cutoff,
                     F&& f) const;

 private:
  common::Vec3 origin_;
  double cell_size_ = 0.0;
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<std::vector<int>> cells_;
  int cell_of(const common::Vec3& p) const;
};

class ForceField {
 public:
  ForceField(const Topology& topo, const ForceFieldOptions& opts = {});

  /// Energy and forces (forces resized and overwritten). Pass nullptr to
  /// skip force computation.
  EnergyBreakdown evaluate(const std::vector<common::Vec3>& pos,
                           std::vector<common::Vec3>* forces) const;

  /// Interaction energy only (protein-ligand LJ + Coulomb), for per-frame
  /// MMPBSA scoring without paying for forces.
  double interaction_energy(const std::vector<common::Vec3>& pos) const;

  const Topology& topology() const { return topo_; }
  const ForceFieldOptions& options() const { return opts_; }

  /// Nonbonded pair evaluations in the last evaluate() call (work units).
  std::uint64_t last_pair_count() const { return last_pairs_; }

 private:
  const Topology& topo_;
  ForceFieldOptions opts_;
  std::unordered_set<std::uint64_t> excluded_;
  mutable CellList cells_;
  mutable std::uint64_t last_pairs_ = 0;

  bool is_excluded(int i, int j) const;
};

// ----------------------------------------------------------------------
// template definition

template <typename F>
void CellList::for_each_pair(const std::vector<common::Vec3>& pos,
                             double cutoff, F&& f) const {
  const double cutoff2 = cutoff * cutoff;
  for (int cz = 0; cz < nz_; ++cz) {
    for (int cy = 0; cy < ny_; ++cy) {
      for (int cx = 0; cx < nx_; ++cx) {
        const auto& cell = cells_[static_cast<std::size_t>((cz * ny_ + cy) * nx_ + cx)];
        if (cell.empty()) continue;
        // Half-shell neighbour iteration: each unordered cell pair once.
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int ox = cx + dx, oy = cy + dy, oz = cz + dz;
              if (ox < 0 || oy < 0 || oz < 0 || ox >= nx_ || oy >= ny_ || oz >= nz_)
                continue;
              const int self = (cz * ny_ + cy) * nx_ + cx;
              const int other = (oz * ny_ + oy) * nx_ + ox;
              if (other < self) continue;  // visit each cell pair once
              const auto& ocell = cells_[static_cast<std::size_t>(other)];
              if (other == self) {
                for (std::size_t a = 0; a < cell.size(); ++a)
                  for (std::size_t b = a + 1; b < cell.size(); ++b) {
                    const int i = std::min(cell[a], cell[b]);
                    const int j = std::max(cell[a], cell[b]);
                    if (common::distance2(pos[static_cast<std::size_t>(i)],
                                          pos[static_cast<std::size_t>(j)]) <= cutoff2)
                      f(i, j);
                  }
              } else {
                for (int pi : cell)
                  for (int pj : ocell) {
                    const int i = std::min(pi, pj);
                    const int j = std::max(pi, pj);
                    if (common::distance2(pos[static_cast<std::size_t>(i)],
                                          pos[static_cast<std::size_t>(j)]) <= cutoff2)
                      f(i, j);
                  }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace impeccable::md
