#pragma once
// Simulation driver: minimize → equilibrate → produce, recording a
// trajectory. One Simulation::run corresponds to one ESMACS replica or one
// DeepDriveMD sampling segment.

#include <cstdint>
#include <vector>

#include "impeccable/md/integrator.hpp"
#include "impeccable/md/system.hpp"

namespace impeccable::md {

/// One stored trajectory frame.
struct Frame {
  std::vector<common::Vec3> positions;
  EnergyBreakdown energy;
  double time = 0.0;  ///< in integration time units
};

struct Trajectory {
  std::vector<Frame> frames;
  std::size_t size() const { return frames.size(); }
};

struct SimulationOptions {
  ForceFieldOptions forcefield;
  LangevinOptions langevin;
  int minimize_iterations = 150;
  int equilibration_steps = 200;
  int production_steps = 800;
  int report_interval = 20;  ///< store a frame every N production steps
  /// If > 0, the protein is position-restrained towards the minimized
  /// structure during equilibration (the standard restrained-equilibration
  /// step of the ESMACS setup); production always runs unrestrained.
  double equilibration_restraint_k = 0.0;
};

struct SimulationResult {
  Trajectory trajectory;
  MinimizeResult minimization;
  std::uint64_t md_steps = 0;  ///< work units for flop accounting
  double mean_temperature = 0.0;
};

/// Run one replica. Deterministic per (system, options, seed).
SimulationResult run_replica(const System& system, const SimulationOptions& opts,
                             std::uint64_t seed);

/// Approximate flops for one MD step of a system with `beads` beads and
/// ~`pairs` nonbonded pairs (Table 3 / Table 2 cost-model input).
std::uint64_t flops_per_md_step(int beads, std::uint64_t pairs);

}  // namespace impeccable::md
