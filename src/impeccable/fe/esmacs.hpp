#pragma once
// ESMACS — Enhanced Sampling of Molecular dynamics with Approximation of
// Continuum Solvent (Sec. 5.1.3).
//
// Ensemble MMPBSA: `replicas` independent Langevin replicas of one LPC,
// each minimize → equilibrate → produce; the binding free energy is the
// replica-mean of per-replica MMPBSA averages, with the replica-to-replica
// spread giving the error bar. Coarse- vs fine-grained variants differ in
// replica count and durations ("6 vs 24 replicas, 1 vs 2 ns equilibration,
// 4 vs 10 ns simulation") with ~10x cost ratio. The adaptive variant grows
// the ensemble until the standard error meets a target — the "number of
// replicas is adjusted to find a sweet spot" behaviour.

#include <cstdint>
#include <optional>
#include <vector>

#include "impeccable/common/stats.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/fe/mmpbsa.hpp"

namespace impeccable::fe {

struct EsmacsConfig {
  int replicas = 6;
  md::SimulationOptions simulation;  ///< per-replica MD schedule
  MmpbsaOptions mmpbsa;
  bool keep_trajectories = false;  ///< retain per-replica trajectories for S2
};

/// Coarse-grained preset: 6 replicas, short equilibration/production.
/// `scale` multiplies the step counts (1.0 = bench default).
EsmacsConfig cg_config(double scale = 1.0);
/// Fine-grained preset: 24 replicas, 2x equilibration, 2.5x production.
EsmacsConfig fg_config(double scale = 1.0);

struct EsmacsResult {
  double binding_free_energy = 0.0;  ///< replica mean, kcal/mol
  double std_error = 0.0;            ///< over replica means
  common::Interval ci95;             ///< bootstrap over replica means
  std::vector<double> replica_means;
  /// Mean within-replica SEM of the per-frame ΔG series, block-averaged to
  /// respect autocorrelation — ESMACS reports both error axes (between
  /// replicas and along each trajectory).
  double within_replica_error = 0.0;
  std::vector<md::Trajectory> trajectories;  ///< if keep_trajectories
  std::uint64_t md_steps = 0;                ///< total work units
};

/// Run the ensemble protocol on one LPC. Replica r uses seed derived from
/// (seed, r); pass a pool to run replicas concurrently.
EsmacsResult run_esmacs(const md::System& lpc, int rotatable_bonds,
                        const EsmacsConfig& config, std::uint64_t seed,
                        common::ThreadPool* pool = nullptr);

struct AdaptiveOptions {
  int min_replicas = 4;
  int max_replicas = 24;
  int batch = 2;              ///< replicas added per adaptation step
  double target_sem = 0.5;    ///< kcal/mol, stop when std_error <= this
};

/// Adaptive ESMACS: start with min_replicas, add batches until the standard
/// error of the mean reaches target_sem or max_replicas is exhausted.
EsmacsResult run_esmacs_adaptive(const md::System& lpc, int rotatable_bonds,
                                 const EsmacsConfig& base,
                                 const AdaptiveOptions& adapt,
                                 std::uint64_t seed,
                                 common::ThreadPool* pool = nullptr);

}  // namespace impeccable::fe
