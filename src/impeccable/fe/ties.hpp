#pragma once
// TIES — Thermodynamic Integration with Enhanced Sampling.
//
// The paper lists TIES as the lead-optimization stage two orders of
// magnitude costlier than ESMACS (Tab. 2: "BFE-TI ... not integrated",
// 640 node-hours/ligand). We implement it fully: the protein-ligand
// interaction Hamiltonian is coupled by λ, an ensemble of replicas samples
// ⟨dH/dλ⟩ = ⟨E_inter⟩ at each λ window, and the free-energy difference is
// the trapezoid integral over λ. ΔG(0→1) is the free energy of switching
// the interactions on, i.e. (minus) the decoupling free energy.

#include <cstdint>
#include <vector>

#include "impeccable/common/stats.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"

namespace impeccable::fe {

struct TiesConfig {
  std::vector<double> lambdas{0.0, 0.25, 0.5, 0.75, 1.0};
  int replicas_per_window = 5;
  md::SimulationOptions simulation;  ///< per-replica schedule (λ is injected)
};

struct TiesWindow {
  double lambda = 0.0;
  double mean_dhdl = 0.0;   ///< ⟨E_inter⟩ at this λ
  double std_error = 0.0;   ///< over replicas
  std::vector<double> replica_means;
};

struct TiesResult {
  double delta_g = 0.0;     ///< trapezoid integral of ⟨dH/dλ⟩ dλ
  double std_error = 0.0;   ///< propagated window errors
  std::vector<TiesWindow> windows;
  std::uint64_t md_steps = 0;
};

/// Run the full TI protocol on one LPC.
TiesResult run_ties(const md::System& lpc, const TiesConfig& config,
                    std::uint64_t seed, common::ThreadPool* pool = nullptr);

}  // namespace impeccable::fe
