#pragma once
// MMPBSA-lite per-frame binding free energy estimator.
//
// Substitution note (DESIGN.md): stands in for MM-PBSA/MM-GBSA. Per frame:
//   ΔG_frame = E_inter (protein-ligand LJ + screened Coulomb)
//            + ΔG_desolv (GB-flavoured: charged/polar burial penalty,
//                         hydrophobic burial bonus)
//            + TΔS_conf (configurational-entropy penalty per rotatable bond)
// The *ensemble protocol* around this estimator (ESMACS) is the paper's
// methodological point and is reproduced exactly; this per-frame functional
// is the substituted part.

#include <vector>

#include "impeccable/md/simulation.hpp"
#include "impeccable/md/system.hpp"

namespace impeccable::fe {

struct MmpbsaOptions {
  double burial_cutoff = 6.0;       ///< Å, neighbour shell defining burial
  double desolv_charged = 0.8;     ///< kcal/mol per neighbour per |e|²
  double desolv_hydrophobic = -0.25;///< kcal/mol per neighbour (favourable)
  double entropy_per_torsion = 0.4; ///< kcal/mol per rotatable bond (penalty)
};

/// ΔG estimate for one stored frame of an LPC trajectory.
double frame_binding_energy(const md::System& system, const md::Frame& frame,
                            int rotatable_bonds, const MmpbsaOptions& opts = {});

/// Mean ΔG over every frame of a replica trajectory.
double replica_binding_energy(const md::System& system,
                              const md::Trajectory& traj, int rotatable_bonds,
                              const MmpbsaOptions& opts = {});

}  // namespace impeccable::fe
