#include "impeccable/fe/mmpbsa.hpp"

#include <cmath>

#include "impeccable/md/forcefield.hpp"

namespace impeccable::fe {

double frame_binding_energy(const md::System& system, const md::Frame& frame,
                            int rotatable_bonds, const MmpbsaOptions& opts) {
  const md::ForceField ff(system.topology);
  const double e_inter = ff.interaction_energy(frame.positions);

  // Desolvation: for each ligand bead count protein neighbours within the
  // burial shell. Buried charge/polarity costs energy (lost water H-bonds);
  // buried hydrophobic surface gains (hydrophobic effect).
  const auto lig = system.topology.selection(md::BeadKind::Ligand);
  const auto prot = system.topology.selection(md::BeadKind::Protein);
  const double c2 = opts.burial_cutoff * opts.burial_cutoff;
  double desolv = 0.0;
  for (int i : lig) {
    int neighbours = 0;
    for (int j : prot)
      if (common::distance2(frame.positions[static_cast<std::size_t>(i)],
                            frame.positions[static_cast<std::size_t>(j)]) < c2)
        ++neighbours;
    const md::Bead& b = system.topology.beads[static_cast<std::size_t>(i)];
    desolv += neighbours * opts.desolv_charged * b.charge * b.charge;
    if (b.hydrophobic) desolv += neighbours * opts.desolv_hydrophobic;
  }

  const double entropy = opts.entropy_per_torsion * rotatable_bonds;
  return e_inter + desolv + entropy;
}

double replica_binding_energy(const md::System& system,
                              const md::Trajectory& traj, int rotatable_bonds,
                              const MmpbsaOptions& opts) {
  if (traj.frames.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& f : traj.frames)
    acc += frame_binding_energy(system, f, rotatable_bonds, opts);
  return acc / static_cast<double>(traj.frames.size());
}

}  // namespace impeccable::fe
