#include "impeccable/fe/esmacs.hpp"

#include <cmath>
#include <string>

#include "impeccable/common/rng.hpp"
#include "impeccable/common/thread_pool.hpp"
#include "impeccable/obs/recorder.hpp"

namespace impeccable::fe {

EsmacsConfig cg_config(double scale) {
  EsmacsConfig c;
  c.replicas = 6;
  c.simulation.minimize_iterations = 100;
  c.simulation.equilibration_steps = static_cast<int>(100 * scale);
  c.simulation.production_steps = static_cast<int>(400 * scale);
  c.simulation.report_interval = 20;
  return c;
}

EsmacsConfig fg_config(double scale) {
  EsmacsConfig c;
  c.replicas = 24;
  c.simulation.minimize_iterations = 150;
  c.simulation.equilibration_steps = static_cast<int>(200 * scale);
  c.simulation.production_steps = static_cast<int>(1000 * scale);
  c.simulation.report_interval = 20;
  return c;
}

namespace {

struct ReplicaOutcome {
  double mean_dg = 0.0;
  double frame_error = 0.0;  ///< block-averaged SEM of the per-frame series
  std::uint64_t md_steps = 0;
  md::Trajectory trajectory;
};

ReplicaOutcome run_one(const md::System& lpc, int rotatable_bonds,
                       const EsmacsConfig& config, std::uint64_t replica_seed) {
  ReplicaOutcome out;
  md::SimulationResult sim = md::run_replica(lpc, config.simulation, replica_seed);
  std::vector<double> frame_dg;
  frame_dg.reserve(sim.trajectory.size());
  for (const auto& frame : sim.trajectory.frames)
    frame_dg.push_back(
        frame_binding_energy(lpc, frame, rotatable_bonds, config.mmpbsa));
  out.mean_dg = frame_dg.empty() ? 0.0 : common::mean(frame_dg);
  out.frame_error = common::block_average_error(frame_dg);
  out.md_steps = sim.md_steps;
  if (config.keep_trajectories) out.trajectory = std::move(sim.trajectory);
  return out;
}

EsmacsResult summarize(std::vector<ReplicaOutcome> outcomes, bool keep,
                       std::uint64_t seed) {
  EsmacsResult res;
  for (auto& o : outcomes) {
    res.replica_means.push_back(o.mean_dg);
    res.within_replica_error += o.frame_error / static_cast<double>(outcomes.size());
    res.md_steps += o.md_steps;
    if (keep) res.trajectories.push_back(std::move(o.trajectory));
  }
  res.binding_free_energy = common::mean(res.replica_means);
  res.std_error = common::std_error(res.replica_means);
  res.ci95 = common::bootstrap_ci95(res.replica_means, 400, seed ^ 0xb007);
  return res;
}

std::vector<ReplicaOutcome> run_batch(const md::System& lpc, int rotatable_bonds,
                                      const EsmacsConfig& config,
                                      std::uint64_t seed, int first_replica,
                                      int count, common::ThreadPool* pool,
                                      obs::SpanId parent) {
  std::vector<ReplicaOutcome> outcomes(static_cast<std::size_t>(count));
  auto replica_seed = [&](int r) {
    std::uint64_t s = seed;
    common::splitmix64(s);
    return s ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r + 1));
  };
  auto run_replica_slot = [&](std::size_t r) {
    const int replica = first_replica + static_cast<int>(r);
    // Replicas may execute on pool threads: parent explicitly to the
    // enclosing esmacs span instead of the worker's local stack.
    obs::Span span(obs::cat::kFe, "replica-" + std::to_string(replica),
                   obs::global(), parent);
    outcomes[r] = run_one(lpc, rotatable_bonds, config, replica_seed(replica));
    if (span.active()) span.arg("mean_dg", outcomes[r].mean_dg);
  };
  if (pool) {
    common::parallel_for(*pool, 0, outcomes.size(), run_replica_slot, 1);
  } else {
    for (std::size_t r = 0; r < outcomes.size(); ++r) run_replica_slot(r);
  }
  return outcomes;
}

}  // namespace

EsmacsResult run_esmacs(const md::System& lpc, int rotatable_bonds,
                        const EsmacsConfig& config, std::uint64_t seed,
                        common::ThreadPool* pool) {
  obs::Span span(obs::cat::kFe, "esmacs");
  span.arg("replicas", static_cast<double>(config.replicas));
  auto outcomes = run_batch(lpc, rotatable_bonds, config, seed, 0,
                            config.replicas, pool, span.id());
  EsmacsResult res =
      summarize(std::move(outcomes), config.keep_trajectories, seed);
  if (span.active()) span.arg("dg", res.binding_free_energy);
  return res;
}

EsmacsResult run_esmacs_adaptive(const md::System& lpc, int rotatable_bonds,
                                 const EsmacsConfig& base,
                                 const AdaptiveOptions& adapt,
                                 std::uint64_t seed, common::ThreadPool* pool) {
  obs::Span span(obs::cat::kFe, "esmacs-adaptive");
  std::vector<ReplicaOutcome> outcomes = run_batch(
      lpc, rotatable_bonds, base, seed, 0, adapt.min_replicas, pool, span.id());

  auto sem_of = [&]() {
    std::vector<double> means;
    for (const auto& o : outcomes) means.push_back(o.mean_dg);
    return common::std_error(means);
  };

  int next = adapt.min_replicas;
  while (static_cast<int>(outcomes.size()) < adapt.max_replicas &&
         (outcomes.size() < 2 || sem_of() > adapt.target_sem)) {
    const int count = std::min(adapt.batch,
                               adapt.max_replicas - static_cast<int>(outcomes.size()));
    auto more = run_batch(lpc, rotatable_bonds, base, seed, next, count, pool,
                          span.id());
    next += count;
    for (auto& o : more) outcomes.push_back(std::move(o));
  }
  if (span.active())
    span.arg("replicas", static_cast<double>(outcomes.size()));
  return summarize(std::move(outcomes), base.keep_trajectories, seed);
}

}  // namespace impeccable::fe
