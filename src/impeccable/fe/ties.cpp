#include "impeccable/fe/ties.hpp"

#include <cmath>
#include <stdexcept>

#include "impeccable/common/rng.hpp"
#include "impeccable/common/thread_pool.hpp"

namespace impeccable::fe {

TiesResult run_ties(const md::System& lpc, const TiesConfig& config,
                    std::uint64_t seed, common::ThreadPool* pool) {
  if (config.lambdas.size() < 2)
    throw std::invalid_argument("run_ties: need at least two lambda windows");

  TiesResult res;
  res.windows.reserve(config.lambdas.size());

  for (std::size_t w = 0; w < config.lambdas.size(); ++w) {
    const double lambda = config.lambdas[w];
    md::SimulationOptions sim = config.simulation;
    sim.forcefield.interaction_scale = lambda;

    std::vector<double> replica_means(
        static_cast<std::size_t>(config.replicas_per_window), 0.0);
    std::vector<std::uint64_t> replica_steps(replica_means.size(), 0);

    auto run_one = [&](std::size_t r) {
      std::uint64_t s = seed ^ (w * 0x517cc1b727220a95ULL) ^
                        (static_cast<std::uint64_t>(r + 1) * 0x2545f4914f6cdd1dULL);
      const auto out = md::run_replica(lpc, sim, s);
      // ⟨dH/dλ⟩ over stored frames (soft-core analytic derivative).
      common::RunningStats rs;
      for (const auto& f : out.trajectory.frames) rs.add(f.energy.dh_dlambda);
      replica_means[r] = rs.count() ? rs.mean() : 0.0;
      replica_steps[r] = out.md_steps;
    };

    if (pool) {
      common::parallel_for(*pool, 0, replica_means.size(), run_one, 1);
    } else {
      for (std::size_t r = 0; r < replica_means.size(); ++r) run_one(r);
    }
    std::uint64_t steps = 0;
    for (std::uint64_t s : replica_steps) steps += s;

    TiesWindow win;
    win.lambda = lambda;
    win.mean_dhdl = common::mean(replica_means);
    win.std_error = common::std_error(replica_means);
    win.replica_means = std::move(replica_means);
    res.windows.push_back(std::move(win));
    res.md_steps += steps;
  }

  // Trapezoid integration over λ with error propagation.
  double dg = 0.0, var = 0.0;
  for (std::size_t w = 0; w + 1 < res.windows.size(); ++w) {
    const double h = res.windows[w + 1].lambda - res.windows[w].lambda;
    dg += 0.5 * h * (res.windows[w].mean_dhdl + res.windows[w + 1].mean_dhdl);
    const double ea = 0.5 * h * res.windows[w].std_error;
    const double eb = 0.5 * h * res.windows[w + 1].std_error;
    var += ea * ea + eb * eb;
  }
  res.delta_g = dg;
  res.std_error = std::sqrt(var);
  return res;
}

}  // namespace impeccable::fe
