#include "impeccable/hpc/des.hpp"

#include <stdexcept>

namespace impeccable::hpc {

void Simulator::schedule_at(double t, Callback fn) {
  if (t < now_ - 1e-12)
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
}

double Simulator::run() {
  while (!queue_.empty()) {
    // Copy out; the callback may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return now_;
}

double Simulator::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace impeccable::hpc
