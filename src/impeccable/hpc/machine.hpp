#pragma once
// Machine models for the leadership platforms the campaign ran on
// (Sec. 8: Summit, Frontera, Lassen, Theta, SuperMUC-NG).
//
// Substitution note (DESIGN.md): scale results (Tables 2-3, Fig. 7, the
// 40-50M docks/hour claims) depend on machine size and per-GPU throughput,
// not on physically owning the machine; the discrete-event cluster simulator
// below reproduces them in virtual time.

#include <string>

namespace impeccable::hpc {

struct MachineSpec {
  std::string name;
  int nodes = 1;
  int gpus_per_node = 0;
  int cores_per_node = 1;
  /// Effective mixed-precision Tflop/s per GPU for well-optimized kernels
  /// (measured-app numbers, far below marketing peak).
  double tflops_per_gpu = 0.5;
  double tflops_per_core = 0.05;

  int total_gpus() const { return nodes * gpus_per_node; }
  long total_cores() const { return static_cast<long>(nodes) * cores_per_node; }
};

/// ORNL Summit: 4608 nodes x 6 V100 x 42 usable Power9 cores.
MachineSpec summit(int nodes = 4608);
/// TACC Frontera: CPU machine, 8008 nodes x 56 cores.
MachineSpec frontera(int nodes = 8008);
/// A small partition for tests (default 4 nodes of Summit geometry).
MachineSpec test_machine(int nodes = 4);

}  // namespace impeccable::hpc
