#pragma once
// Discrete-event simulation core: a virtual clock and an event queue.
// Deterministic: ties in time break by insertion order.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace impeccable::hpc {

class Simulator {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  void schedule_at(double t, Callback fn);
  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(double delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run events until the queue drains. Returns the final time.
  double run();
  /// Run events up to and including time `t_end`.
  double run_until(double t_end);

  bool empty() const { return queue_.empty(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace impeccable::hpc
