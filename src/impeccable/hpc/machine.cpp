#include "impeccable/hpc/machine.hpp"

namespace impeccable::hpc {

MachineSpec summit(int nodes) {
  MachineSpec m;
  m.name = "summit";
  m.nodes = nodes;
  m.gpus_per_node = 6;
  m.cores_per_node = 42;
  m.tflops_per_gpu = 0.5;   // effective mixed-precision application rate
  m.tflops_per_core = 0.02;
  return m;
}

MachineSpec frontera(int nodes) {
  MachineSpec m;
  m.name = "frontera";
  m.nodes = nodes;
  m.gpus_per_node = 0;
  m.cores_per_node = 56;
  m.tflops_per_gpu = 0.0;
  m.tflops_per_core = 0.05;
  return m;
}

MachineSpec test_machine(int nodes) {
  MachineSpec m = summit(nodes);
  m.name = "test";
  return m;
}

}  // namespace impeccable::hpc
