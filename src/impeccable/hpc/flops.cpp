#include "impeccable/hpc/flops.hpp"

namespace impeccable::hpc {

void FlopCounter::add(const std::string& component, std::uint64_t flops) {
  std::lock_guard lock(mutex_);
  counts_[component] += flops;
}

std::uint64_t FlopCounter::total(const std::string& component) const {
  std::lock_guard lock(mutex_);
  auto it = counts_.find(component);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t FlopCounter::grand_total() const {
  std::lock_guard lock(mutex_);
  std::uint64_t acc = 0;
  for (const auto& [k, v] : counts_) acc += v;
  return acc;
}

double FlopCounter::tflops(std::uint64_t flops, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(flops) / seconds / 1e12;
}

std::map<std::string, std::uint64_t> FlopCounter::snapshot() const {
  std::lock_guard lock(mutex_);
  return counts_;
}

void FlopCounter::reset() {
  std::lock_guard lock(mutex_);
  counts_.clear();
}

}  // namespace impeccable::hpc
