#pragma once
// Flop accounting (Sec. 7.2): components report flops per *work unit* (an MD
// step, a docking evaluation, a DL batch); the tally aggregates them and the
// benches divide by task durations to regenerate Table 3's flop rates.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace impeccable::hpc {

class FlopCounter {
 public:
  /// Add `flops` under a component label ("ML1", "S1", "S3-CG", ...).
  void add(const std::string& component, std::uint64_t flops);

  std::uint64_t total(const std::string& component) const;
  std::uint64_t grand_total() const;

  /// Tflop/s given an elapsed time in seconds.
  static double tflops(std::uint64_t flops, double seconds);

  std::map<std::string, std::uint64_t> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace impeccable::hpc
