#include "impeccable/hpc/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace impeccable::hpc {

ClusterSim::ClusterSim(Simulator& sim, const MachineSpec& machine)
    : sim_(sim), machine_(machine),
      nodes_(static_cast<std::size_t>(machine.nodes),
             Node{machine.cores_per_node, machine.gpus_per_node}) {
  record();
}

bool ClusterSim::try_place(const SlotRequest& req, Placement& out,
                           const std::vector<char>* forbidden) {
  const auto blocked = [forbidden](int i) {
    return forbidden && (*forbidden)[static_cast<std::size_t>(i)];
  };
  if (req.whole_nodes > 0) {
    if (req.whole_nodes > machine_.nodes)
      throw std::invalid_argument("ClusterSim: request larger than machine");
    // Find a run of fully free nodes (first fit).
    int run = 0;
    for (int i = 0; i < machine_.nodes; ++i) {
      const Node& n = nodes_[static_cast<std::size_t>(i)];
      const bool free = !blocked(i) &&
                        n.free_cpus == machine_.cores_per_node &&
                        n.free_gpus == machine_.gpus_per_node;
      run = free ? run + 1 : 0;
      if (run == req.whole_nodes) {
        out.first_node = i - run + 1;
        out.node_count = run;
        out.cpus = run * machine_.cores_per_node;
        out.gpus = run * machine_.gpus_per_node;
        for (int k = out.first_node; k <= i; ++k) {
          nodes_[static_cast<std::size_t>(k)].free_cpus = 0;
          nodes_[static_cast<std::size_t>(k)].free_gpus = 0;
        }
        busy_cpus_ += out.cpus;
        busy_gpus_ += out.gpus;
        return true;
      }
    }
    return false;
  }

  if (req.cpus > machine_.cores_per_node || req.gpus > machine_.gpus_per_node)
    throw std::invalid_argument("ClusterSim: single-node request too large");
  for (int i = 0; i < machine_.nodes; ++i) {
    Node& n = nodes_[static_cast<std::size_t>(i)];
    if (!blocked(i) && n.free_cpus >= req.cpus && n.free_gpus >= req.gpus) {
      n.free_cpus -= req.cpus;
      n.free_gpus -= req.gpus;
      out.first_node = i;
      out.node_count = 1;
      out.cpus = req.cpus;
      out.gpus = req.gpus;
      busy_cpus_ += req.cpus;
      busy_gpus_ += req.gpus;
      return true;
    }
  }
  return false;
}

void ClusterSim::submit(const SlotRequest& req, StartCallback on_start) {
  // Keep the pending queue sorted by priority (descending); a new request
  // goes after every queued request of equal or higher priority, so equal
  // priorities preserve arrival order and all-zero priorities are pure FIFO.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), req.priority,
      [](double p, const Pending& q) { return q.req.priority < p; });
  queue_.insert(pos, Pending{req, std::move(on_start)});
  drain_queue();
}

void ClusterSim::release(const SlotRequest& req, const Placement& where) {
  if (where.node_count <= 0)
    throw std::invalid_argument("ClusterSim::release: invalid placement");
  if (req.whole_nodes > 0) {
    for (int k = where.first_node; k < where.first_node + where.node_count; ++k) {
      nodes_[static_cast<std::size_t>(k)].free_cpus = machine_.cores_per_node;
      nodes_[static_cast<std::size_t>(k)].free_gpus = machine_.gpus_per_node;
    }
  } else {
    Node& n = nodes_[static_cast<std::size_t>(where.first_node)];
    n.free_cpus += req.cpus;
    n.free_gpus += req.gpus;
  }
  busy_cpus_ -= where.cpus;
  busy_gpus_ -= where.gpus;
  record();
  drain_queue();
}

void ClusterSim::reserve_draining_nodes(int count,
                                        std::vector<char>& reserved) const {
  if (count <= 0 || count > machine_.nodes) return;
  // Bounded draining: reservations never claim more than half the machine,
  // so backfill throughput survives while ensemble waves acquire nodes —
  // freezing the whole machine for a blocked wave serializes the dock
  // stream behind it and costs more than the starvation it prevents.
  int already = 0;
  for (char r : reserved) already += r ? 1 : 0;
  if (already + count > machine_.nodes / 2) return;
  // Pick the not-yet-reserved contiguous window of `count` nodes with the
  // most free slots: it drains soonest, and whole-node placement needs a
  // contiguous run, so reserving a window guarantees the run materializes.
  int best = -1;
  int best_free = -1;
  for (int start = 0; start + count <= machine_.nodes; ++start) {
    int free = 0;
    bool available = true;
    for (int i = start; i < start + count; ++i) {
      if (reserved[static_cast<std::size_t>(i)]) {
        available = false;
        break;
      }
      const Node& n = nodes_[static_cast<std::size_t>(i)];
      free += n.free_cpus + n.free_gpus;
    }
    if (available && free > best_free) {
      best_free = free;
      best = start;
    }
  }
  if (best < 0) return;
  for (int i = best; i < best + count; ++i)
    reserved[static_cast<std::size_t>(i)] = 1;
}

void ClusterSim::drain_queue() {
  bool placed_any = false;
  // Scan in queue (priority) order. A blocked whole-node request reserves a
  // draining window; strictly-lower-priority requests behind it may not
  // backfill onto the reserved nodes — otherwise a stream of single-GPU
  // work refills every freed slot and whole-node ensemble waves starve.
  // With all priorities equal (the historical FIFO case) nothing is ever
  // restricted and this is the original aggressive backfill.
  std::vector<char> reserved;
  bool any_blocked = false;
  double blocked_priority = 0.0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const bool restricted =
        any_blocked && it->req.priority < blocked_priority && !reserved.empty();
    Placement where;
    if (try_place(it->req, where, restricted ? &reserved : nullptr)) {
      // Fire the start callback via the event queue so start ordering is
      // well-defined and re-entrant submits are safe.
      auto cb = std::move(it->on_start);
      it = queue_.erase(it);
      placed_any = true;
      sim_.schedule_in(0.0, [cb = std::move(cb), where] { cb(where); });
    } else {
      if (it->req.whole_nodes > 0) {
        if (reserved.empty()) reserved.assign(nodes_.size(), 0);
        reserve_draining_nodes(it->req.whole_nodes, reserved);
      }
      if (!any_blocked) {
        // The queue is priority-sorted, so the first blocked request holds
        // the highest priority any blocked request will have.
        any_blocked = true;
        blocked_priority = it->req.priority;
      }
      ++it;
    }
  }
  if (placed_any) record();
}

void ClusterSim::record() {
  UtilizationSample s;
  s.time = sim_.now();
  const double tg = static_cast<double>(machine_.total_gpus());
  const double tc = static_cast<double>(machine_.total_cores());
  s.gpu_busy_fraction = tg > 0 ? busy_gpus_ / tg : 0.0;
  s.cpu_busy_fraction = tc > 0 ? busy_cpus_ / tc : 0.0;
  series_.push_back(s);
}

double ClusterSim::mean_gpu_utilization(double t0, double t1) const {
  if (series_.empty() || t1 <= t0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const double seg_start = std::max(t0, series_[i].time);
    const double seg_end =
        std::min(t1, i + 1 < series_.size() ? series_[i + 1].time : t1);
    if (seg_end > seg_start)
      acc += (seg_end - seg_start) * series_[i].gpu_busy_fraction;
  }
  return acc / (t1 - t0);
}

}  // namespace impeccable::hpc
