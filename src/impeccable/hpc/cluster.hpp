#pragma once
// Discrete-event cluster: nodes with CPU/GPU slots, FIFO-backfill placement,
// and a utilization recorder (the Fig. 7 time series).

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "impeccable/hpc/des.hpp"
#include "impeccable/hpc/machine.hpp"

namespace impeccable::hpc {

/// A resource request for one simulated task.
struct SlotRequest {
  int cpus = 1;
  int gpus = 0;
  /// If > 0 the request claims this many whole nodes (multi-node MPI tasks,
  /// e.g. the AutoDock-GPU "single task running on several thousand nodes").
  int whole_nodes = 0;
  /// Queue priority: the pending queue is kept ordered by priority
  /// (descending), arrival order within a priority level. All-zero priorities
  /// reproduce the original pure-FIFO backfill exactly.
  double priority = 0.0;
};

/// Where a request landed (whole-node requests use first_node/node_count).
struct Placement {
  int first_node = -1;
  int node_count = 0;
  int cpus = 0;
  int gpus = 0;
};

/// One point of the utilization time series.
struct UtilizationSample {
  double time = 0.0;
  double gpu_busy_fraction = 0.0;
  double cpu_busy_fraction = 0.0;
};

/// Simulated cluster bound to a Simulator clock.
///
/// submit() places the request now if resources allow, otherwise queues it
/// in priority order (FIFO within a priority level); when a running task
/// releases resources the queue is re-scanned in order (backfill: later
/// tasks may start if earlier ones do not fit). A blocked whole-node request
/// additionally *reserves* the nodes closest to draining: requests of
/// strictly lower priority may not backfill onto them, so ensemble waves are
/// never starved by a stream of single-GPU work. Within one priority level
/// nothing is reserved — all-zero priorities reproduce the original
/// pure-FIFO aggressive backfill exactly. `on_start` fires when placed; the
/// caller schedules its own completion and must call release().
class ClusterSim {
 public:
  ClusterSim(Simulator& sim, const MachineSpec& machine);

  using StartCallback = std::function<void(const Placement&)>;

  void submit(const SlotRequest& req, StartCallback on_start);
  void release(const SlotRequest& req, const Placement& where);

  const MachineSpec& machine() const { return machine_; }
  Simulator& simulator() { return sim_; }

  int busy_gpus() const { return busy_gpus_; }
  int busy_cpus() const { return busy_cpus_; }
  std::size_t queued() const { return queue_.size(); }

  /// Complete utilization history (one sample per allocation change).
  const std::vector<UtilizationSample>& utilization() const { return series_; }

  /// Time-weighted mean GPU utilization over [t0, t1].
  double mean_gpu_utilization(double t0, double t1) const;

 private:
  struct Node {
    int free_cpus = 0;
    int free_gpus = 0;
  };
  struct Pending {
    SlotRequest req;
    StartCallback on_start;
  };

  /// Place `req` if it fits. When `forbidden` is non-null, nodes flagged in
  /// it are treated as unavailable (reserved for a blocked higher-priority
  /// request upstream in the queue scan).
  bool try_place(const SlotRequest& req, Placement& out,
                 const std::vector<char>* forbidden = nullptr);
  /// Reserve the `count` unreserved nodes closest to fully free (fewest
  /// busy slots) for a blocked whole-node request.
  void reserve_draining_nodes(int count, std::vector<char>& reserved) const;
  void drain_queue();
  void record();

  Simulator& sim_;
  MachineSpec machine_;
  std::vector<Node> nodes_;
  std::deque<Pending> queue_;
  int busy_gpus_ = 0;
  int busy_cpus_ = 0;
  std::vector<UtilizationSample> series_;
};

}  // namespace impeccable::hpc
